//! Bounded explicit-state model checking of the MOESI protocol.
//!
//! Two engines, both driving the *real* transition functions from
//! `nisim-mem` (not a re-implementation):
//!
//! 1. [`MoesiChecker::cross_product`] — exhaustively enumerates every
//!    `(MoesiState, SnoopKind)` pair plus the write-hit and read-fill
//!    transitions, asserting local properties of each transition
//!    (suppliers hold the freshest copy, dirty ownership survives read
//!    snoops, invalidating transactions actually invalidate, …).
//!
//! 2. [`MoesiChecker::explore`] — BFS over a small system model: N caches (2 and 3)
//!    sharing one block over a snooping bus, with an explicit
//!    "memory is stale" bit. Each bus transaction is atomic. The
//!    search asserts the global invariants (SWMR, exactly one owner
//!    for dirty data, memory staleness implies an owner) in every
//!    reachable state and proves convergence: every reachable state
//!    can drain back to the quiescent all-Invalid/memory-fresh state.
//!
//! A deliberately broken transition is available behind
//! [`MoesiChecker::with_mutant`]: `(Modified, Read)` then surrenders
//! ownership (`-> Shared`) while still supplying cache-to-cache, so
//! memory is never updated and the dirty data loses its owner. The
//! `selftest` subcommand proves the checker reports it.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use nisim_mem::{
    read_fill_state, snoop_transition, write_hit_transition, MoesiState, SnoopAction, SnoopKind,
};

/// All snoopable bus-transaction kinds, in a fixed order.
pub const SNOOP_KINDS: [SnoopKind; 3] = [
    SnoopKind::Read,
    SnoopKind::ReadExclusive,
    SnoopKind::Upgrade,
];

/// Outcome of a model-checking run.
#[derive(Clone, Debug, Default)]
pub struct CheckOutcome {
    /// Human-readable violation reports; empty means the check passed.
    pub violations: Vec<String>,
    /// Distinct system states reached across all searches.
    pub states: usize,
    /// Transitions examined across all searches.
    pub transitions: usize,
    /// Bitmap (by [`MoesiState::index`]) of per-cache states any cache
    /// attains in any reachable system state — the static half of the
    /// static-vs-dynamic agreement test.
    pub reachable_mask: u8,
}

impl CheckOutcome {
    fn merge(&mut self, other: CheckOutcome) {
        self.violations.extend(other.violations);
        self.states += other.states;
        self.transitions += other.transitions;
        self.reachable_mask |= other.reachable_mask;
    }
}

/// The checker; `mutant` swaps in the deliberately broken transition.
#[derive(Clone, Copy, Debug)]
pub struct MoesiChecker {
    mutant: bool,
}

impl Default for MoesiChecker {
    fn default() -> Self {
        Self::new()
    }
}

impl MoesiChecker {
    /// Checks the real protocol.
    pub fn new() -> MoesiChecker {
        MoesiChecker { mutant: false }
    }

    /// Checks a protocol with a seeded bug: on a read snoop, a
    /// `Modified` holder supplies the block but demotes itself to
    /// `Shared` instead of `Owned`, so the dirty data has no owner and
    /// memory is never brought up to date.
    pub fn with_mutant() -> MoesiChecker {
        MoesiChecker { mutant: true }
    }

    /// The snoop transition under test.
    fn snoop(&self, state: MoesiState, kind: SnoopKind) -> SnoopAction {
        if self.mutant && state == MoesiState::Modified && kind == SnoopKind::Read {
            return SnoopAction {
                next: MoesiState::Shared,
                supply: true,
            };
        }
        snoop_transition(state, kind)
    }

    /// Runs every check: the transition cross-product plus the 2- and
    /// 3-cache bus searches.
    pub fn check(&self) -> CheckOutcome {
        let mut out = self.cross_product();
        out.merge(self.explore(2));
        out.merge(self.explore(3));
        out
    }

    /// Exhaustive enumeration of the `(MoesiState × SnoopKind)`
    /// cross-product plus the write-hit and read-fill transitions.
    pub fn cross_product(&self) -> CheckOutcome {
        let mut out = CheckOutcome::default();
        for s in MoesiState::ALL {
            for k in SNOOP_KINDS {
                out.transitions += 1;
                let a = self.snoop(s, k);
                let mut fail = |why: &str| {
                    out.violations.push(format!(
                        "cross-product: ({s}, {k:?}) -> ({}, supply={}) {why}",
                        a.next, a.supply
                    ));
                };
                if a.supply && !s.supplies_data() {
                    fail("supplies without holding the freshest copy");
                }
                if k == SnoopKind::Read && s.dirty() && !(a.supply && a.next.dirty()) {
                    fail("dirty data loses its owner on a read snoop (memory is not updated)");
                }
                if k == SnoopKind::Read && s.is_valid() && !a.next.is_valid() {
                    fail("a read snoop must not invalidate the observed copy");
                }
                if k == SnoopKind::Read && a.next.writable() {
                    fail("copy stays writable although another cache now holds the block");
                }
                if k == SnoopKind::ReadExclusive && a.next != MoesiState::Invalid {
                    fail("BusRdX must invalidate every other copy");
                }
                if k == SnoopKind::ReadExclusive && a.supply != s.supplies_data() {
                    fail("exactly the freshest-copy holders supply on BusRdX");
                }
                if k == SnoopKind::Upgrade && (a.next != MoesiState::Invalid || a.supply) {
                    fail("BusUpgr must invalidate without a data phase");
                }
                if s == MoesiState::Invalid && (a.next != MoesiState::Invalid || a.supply) {
                    fail("a cache without the block must not react");
                }
            }
        }
        for s in MoesiState::ALL {
            if !s.is_valid() {
                continue; // write_hit_transition is defined (as a panic) only off Invalid
            }
            out.transitions += 1;
            let (next, upgrade) = write_hit_transition(s);
            if next != MoesiState::Modified {
                out.violations
                    .push(format!("cross-product: write hit on {s} must end Modified"));
            }
            let sharers_possible = matches!(s, MoesiState::Shared | MoesiState::Owned);
            if upgrade != sharers_possible {
                out.violations.push(format!(
                    "cross-product: write hit on {s} must upgrade iff other copies may exist"
                ));
            }
        }
        out.transitions += 2;
        if read_fill_state(false) != MoesiState::Exclusive {
            out.violations
                .push("cross-product: sole read fill must install Exclusive".into());
        }
        if read_fill_state(true) != MoesiState::Shared {
            out.violations
                .push("cross-product: shared read fill must install Shared".into());
        }
        out
    }

    /// BFS over `n` caches sharing one block on a snooping bus.
    ///
    /// System state: one `MoesiState` per cache plus a "memory stale"
    /// bit. Operations (each an atomic bus transaction): per-cache read
    /// miss (BusRd), write miss (BusRdX), write hit (silent or BusUpgr)
    /// and eviction (with writeback when dirty).
    pub fn explore(&self, n: usize) -> CheckOutcome {
        assert!((2..=3).contains(&n), "bounded search covers 2-3 caches");
        let mut out = CheckOutcome::default();
        let initial = SysState {
            caches: vec![MoesiState::Invalid; n],
            mem_stale: false,
        };
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut edges: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut queue = VecDeque::new();
        let mut violations: BTreeSet<String> = BTreeSet::new();
        seen.insert(initial.encode());
        queue.push_back(initial.clone());
        while let Some(st) = queue.pop_front() {
            for c in &st.caches {
                out.reachable_mask |= 1 << c.index();
            }
            for v in st.invariant_violations(n) {
                violations.insert(v);
            }
            let succs = self.successors(&st, &mut violations);
            out.transitions += succs.len();
            let entry = edges.entry(st.encode()).or_default();
            for next in succs {
                let code = next.encode();
                entry.push(code);
                if seen.insert(code) {
                    queue.push_back(next);
                }
            }
        }
        out.states = seen.len();
        // Convergence: every reachable state must be able to drain back
        // to quiescence (all caches Invalid, memory fresh) — evictions
        // with writeback guarantee it for the real protocol.
        let quiescent = initial.encode();
        let mut reverse: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (from, tos) in &edges {
            for to in tos {
                reverse.entry(*to).or_default().push(*from);
            }
        }
        let mut can_drain: BTreeSet<u64> = BTreeSet::new();
        let mut rq = VecDeque::new();
        if seen.contains(&quiescent) {
            can_drain.insert(quiescent);
            rq.push_back(quiescent);
        }
        while let Some(code) = rq.pop_front() {
            if let Some(preds) = reverse.get(&code) {
                for p in preds {
                    if can_drain.insert(*p) {
                        rq.push_back(*p);
                    }
                }
            }
        }
        for code in &seen {
            if !can_drain.contains(code) {
                violations.insert(format!(
                    "{n}-cache search: state {} cannot drain back to quiescence",
                    SysState::decode(*code, n)
                ));
            }
        }
        out.violations.extend(violations);
        out
    }

    /// All successor states of `st`, recording per-transition violations.
    fn successors(&self, st: &SysState, violations: &mut BTreeSet<String>) -> Vec<SysState> {
        let n = st.caches.len();
        let mut succs = Vec::new();
        for i in 0..n {
            let s = st.caches[i];
            if s == MoesiState::Invalid {
                // Read miss: BusRd. Everyone else snoops; at most one
                // cache supplies; with no supplier the fill comes from
                // memory, which must then be up to date.
                let mut next = st.clone();
                let mut suppliers = 0;
                for j in 0..n {
                    if j == i {
                        continue;
                    }
                    let a = self.snoop(next.caches[j], SnoopKind::Read);
                    next.caches[j] = a.next;
                    suppliers += usize::from(a.supply);
                }
                if suppliers > 1 {
                    violations.insert(format!(
                        "{n}-cache search: {st}: BusRd by cache {i} finds {suppliers} suppliers"
                    ));
                }
                if suppliers == 0 && st.mem_stale {
                    violations.insert(format!(
                        "{n}-cache search: {st}: BusRd by cache {i} served from stale memory"
                    ));
                }
                let sharers = (0..n).any(|j| j != i && next.caches[j].is_valid());
                next.caches[i] = read_fill_state(sharers);
                succs.push(next);

                // Write miss: BusRdX. Every other copy invalidates;
                // dirty holders supply on the way out.
                let mut next = st.clone();
                let mut suppliers = 0;
                for j in 0..n {
                    if j == i {
                        continue;
                    }
                    let a = self.snoop(next.caches[j], SnoopKind::ReadExclusive);
                    next.caches[j] = a.next;
                    suppliers += usize::from(a.supply);
                }
                if suppliers > 1 {
                    violations.insert(format!(
                        "{n}-cache search: {st}: BusRdX by cache {i} finds {suppliers} suppliers"
                    ));
                }
                if suppliers == 0 && st.mem_stale {
                    violations.insert(format!(
                        "{n}-cache search: {st}: BusRdX by cache {i} served from stale memory"
                    ));
                }
                next.caches[i] = MoesiState::Modified;
                next.mem_stale = true;
                succs.push(next);
            } else {
                // Write hit: silent on writable copies, BusUpgr first
                // when other copies may exist.
                let (wnext, upgrade) = write_hit_transition(s);
                let mut next = st.clone();
                if upgrade {
                    for j in 0..n {
                        if j == i {
                            continue;
                        }
                        let a = self.snoop(next.caches[j], SnoopKind::Upgrade);
                        next.caches[j] = a.next;
                    }
                } else if !s.writable() {
                    violations.insert(format!(
                        "{n}-cache search: {st}: silent write by cache {i} on a non-writable copy"
                    ));
                }
                next.caches[i] = wnext;
                next.mem_stale = true;
                succs.push(next);

                // Eviction; dirty victims write back, refreshing memory.
                let mut next = st.clone();
                next.caches[i] = MoesiState::Invalid;
                if s.dirty() {
                    next.mem_stale = false;
                }
                succs.push(next);
            }
        }
        succs
    }
}

/// One system state of the bounded bus model.
#[derive(Clone, Debug, PartialEq, Eq)]
struct SysState {
    caches: Vec<MoesiState>,
    mem_stale: bool,
}

impl SysState {
    /// Mixed-radix encoding: cache states base 5, staleness on top.
    fn encode(&self) -> u64 {
        let mut code = 0u64;
        for c in self.caches.iter().rev() {
            code = code * 5 + c.index() as u64;
        }
        code * 2 + u64::from(self.mem_stale)
    }

    fn decode(code: u64, n: usize) -> SysState {
        let mem_stale = code % 2 == 1;
        let mut rest = code / 2;
        let mut caches = Vec::with_capacity(n);
        for _ in 0..n {
            caches.push(MoesiState::ALL[(rest % 5) as usize]);
            rest /= 5;
        }
        SysState { caches, mem_stale }
    }

    /// The global safety invariants, checked in every reachable state.
    fn invariant_violations(&self, n: usize) -> Vec<String> {
        let mut v = Vec::new();
        let writers = self.caches.iter().filter(|c| c.writable()).count();
        let valid = self.caches.iter().filter(|c| c.is_valid()).count();
        if writers > 0 && valid > writers {
            v.push(format!(
                "{n}-cache search: {self}: SWMR violated (writable copy coexists with another copy)"
            ));
        }
        if writers > 1 {
            v.push(format!("{n}-cache search: {self}: two writable copies"));
        }
        let owners = self.caches.iter().filter(|c| c.dirty()).count();
        if owners > 1 {
            v.push(format!(
                "{n}-cache search: {self}: dirty data has {owners} owners"
            ));
        }
        if self.mem_stale != (owners == 1) {
            v.push(format!(
                "{n}-cache search: {self}: memory staleness disagrees with ownership \
                 (stale={}, owners={owners})",
                self.mem_stale
            ));
        }
        v
    }
}

impl std::fmt::Display for SysState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for c in &self.caches {
            write!(f, "{c}")?;
        }
        write!(
            f,
            "|mem {}]",
            if self.mem_stale { "stale" } else { "fresh" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_protocol_has_no_violations() {
        let out = MoesiChecker::new().check();
        assert_eq!(out.violations, Vec::<String>::new());
        assert!(out.states > 0 && out.transitions > 0);
    }

    #[test]
    fn every_cache_state_is_reachable() {
        let out = MoesiChecker::new().check();
        assert_eq!(out.reachable_mask, 0b1_1111, "all five MOESI states");
    }

    #[test]
    fn mutant_is_caught_by_cross_product() {
        let out = MoesiChecker::with_mutant().cross_product();
        assert!(
            out.violations.iter().any(|v| v.contains("loses its owner")),
            "got: {:?}",
            out.violations
        );
    }

    #[test]
    fn mutant_is_caught_by_the_bus_search() {
        let out = MoesiChecker::with_mutant().explore(2);
        assert!(
            out.violations
                .iter()
                .any(|v| v.contains("staleness disagrees with ownership")),
            "got: {:?}",
            out.violations
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        for code in 0..(5u64 * 5 * 5 * 2) {
            let st = SysState::decode(code, 3);
            assert_eq!(st.encode(), code);
        }
    }

    #[test]
    fn state_spaces_are_fully_bounded() {
        let two = MoesiChecker::new().explore(2);
        let three = MoesiChecker::new().explore(3);
        assert!(two.states <= 5 * 5 * 2);
        assert!(three.states <= 5 * 5 * 5 * 2);
    }
}
