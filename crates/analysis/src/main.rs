//! `nisim-analysis` command line: model check, lint, and the seeded
//! mutant self-test. Exit status is nonzero on any finding, so CI can
//! gate on it directly.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use nisim_analysis::epoch_check::EpochChecker;
use nisim_analysis::moesi_check::MoesiChecker;
use nisim_analysis::{audit, lint, protocol_check};

/// The repository root, resolved from this crate's manifest directory
/// so the binary works from any working directory.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analysis sits two levels below the repo root")
        .to_path_buf()
}

fn run_check() -> bool {
    let moesi = MoesiChecker::new().check();
    println!(
        "model check: MOESI cross-product + bus search: {} states, {} transitions",
        moesi.states, moesi.transitions
    );
    let proto = protocol_check::check();
    println!(
        "model check: reliability x flow-control: {} states, {} transitions",
        proto.states, proto.transitions
    );
    let mut ok = true;
    for v in moesi.violations.iter().chain(&proto.violations) {
        println!("VIOLATION: {v}");
        ok = false;
    }
    if ok {
        println!("model check: all invariants hold");
    }
    ok
}

fn run_lint() -> bool {
    let root = repo_root();
    let allow_path = root.join("crates/analysis/lint-allow.txt");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => lint::parse_allowlist(&text),
        Err(_) => Default::default(),
    };
    let out = lint::lint_tree(&root, &allow);
    println!(
        "lint: {} files, {} findings, {} stale allowlist entries",
        out.files,
        out.findings.len(),
        out.stale_allows.len()
    );
    for f in &out.findings {
        println!("FINDING: {f}");
    }
    for s in &out.stale_allows {
        println!("STALE ALLOWLIST ENTRY: {s} (remove it from lint-allow.txt)");
    }
    out.is_clean()
}

/// Regenerates `lint-allow.txt` from an allowlist-free run, so the
/// committed suppressions track line-number drift mechanically. The
/// rewritten file still needs human review before committing.
fn run_write_allow() -> bool {
    let root = repo_root();
    let raw = lint::lint_tree(&root, &Default::default());
    let text = lint::render_allowlist(&raw.findings);
    let allow_path = root.join("crates/analysis/lint-allow.txt");
    match std::fs::write(&allow_path, &text) {
        Ok(()) => {
            println!(
                "lint: wrote {} suppression(s) to {}",
                raw.findings.len(),
                allow_path.display()
            );
            for f in &raw.findings {
                println!("ALLOWED: {f}");
            }
            true
        }
        Err(e) => {
            eprintln!("lint: cannot write {}: {e}", allow_path.display());
            false
        }
    }
}

/// Exhaustive bounded model check of the epoch-merge algorithm:
/// every seed layout × behavior assignment over 2–3 abstract nodes must
/// replay to the unique serial order under both lane orders and commute
/// with every mid-epoch checkpoint cut.
fn run_epoch_check() -> bool {
    let out = EpochChecker::new().check();
    println!(
        "epoch check: {} configs, {} events replayed, {} checkpoint cuts, merge alphabet {:?}",
        out.configs, out.events, out.cuts, out.transitions
    );
    if out.violation_count == 0 {
        println!("epoch check: serial == merged == resumed everywhere");
        true
    } else {
        for v in &out.violations {
            println!("VIOLATION: {v}");
        }
        println!("epoch check: {} violation(s)", out.violation_count);
        false
    }
}

/// Worker count for the grid audit: `NISIM_TEST_WORKERS` (the same knob
/// the differential tests honour) or 4.
fn audit_workers() -> u32 {
    std::env::var("NISIM_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(4)
}

/// Runs the 12-NI × 3-app grid with footprint auditing on and verifies
/// every epoch's log: cross-lane disjointness, the lookahead rule, and
/// merge-order shape.
fn run_audit() -> bool {
    let workers = audit_workers();
    let out = audit::audit_grid(workers);
    println!(
        "audit: {} runs at {} workers, {} parallel epochs, {} parallel + {} serial events",
        out.runs, workers, out.epochs, out.parallel_events, out.serial_events
    );
    if out.is_clean() {
        println!("audit: all epochs race-free and merge-exact");
        true
    } else {
        for v in &out.violations {
            println!("VIOLATION: {v}");
        }
        println!("audit: {} violation(s)", out.violations.len());
        false
    }
}

/// Proves the checker catches regressions: the clean protocol must
/// pass and the seeded mutant (a `Modified` holder surrendering
/// ownership on a read snoop) must fail.
fn run_selftest() -> bool {
    let mut ok = true;
    let clean = MoesiChecker::new().check();
    if clean.violations.is_empty() {
        println!("selftest: clean protocol passes ({} states)", clean.states);
    } else {
        println!("selftest: FAIL — clean protocol reported violations:");
        for v in &clean.violations {
            println!("  {v}");
        }
        ok = false;
    }
    let mutant = MoesiChecker::with_mutant().check();
    if mutant.violations.is_empty() {
        println!("selftest: FAIL — seeded MOESI mutant went undetected");
        ok = false;
    } else {
        println!(
            "selftest: seeded mutant caught ({} violations), e.g.:",
            mutant.violations.len()
        );
        if let Some(v) = mutant.violations.first() {
            println!("  {v}");
        }
    }
    // The protocol checker must likewise be able to find a deadlock: an
    // adversary with one more drop than the sender has transmissions
    // wedges the handshake.
    let wedge = protocol_check::ProtocolConfig {
        fragments: 1,
        buffers: 1,
        drop_budget: 3,
        dup_budget: 0,
        max_retries: 2,
    };
    let out = protocol_check::explore(&wedge);
    if out.violations.iter().any(|v| v.contains("deadlock")) {
        println!("selftest: over-budget drop adversary deadlock detected");
    } else {
        println!("selftest: FAIL — expected deadlock went undetected");
        ok = false;
    }
    // The lint must likewise catch a seeded violation of every rule it
    // would actually fire on in the tree — here, a raw metrics-counter
    // mutation smuggled outside the metrics module.
    let seeded = lint::lint_source(
        "crates/core/src/machine.rs",
        "fn sneak(c: &mut ComponentCycles) { c.raw_add(Component::ProcSend, 1); }",
    );
    if seeded.iter().any(|f| f.rule == "metrics-raw") {
        println!("selftest: seeded raw-counter mutation caught by metrics-raw lint");
    } else {
        println!("selftest: FAIL — seeded metrics-raw violation went undetected");
        ok = false;
    }
    // And a sim-crate filesystem write smuggled outside the sanctioned
    // snapshot/trace serialisation modules.
    let seeded = lint::lint_source(
        "crates/net/src/reliability.rs",
        "fn sneak() { let _ = std::fs::write(\"/tmp/x\", b\"state\"); }",
    );
    if seeded.iter().any(|f| f.rule == "fs-write") {
        println!("selftest: seeded sim-crate filesystem write caught by fs-write lint");
    } else {
        println!("selftest: FAIL — seeded fs-write violation went undetected");
        ok = false;
    }
    // A libm transcendental smuggled into a sim crate.
    let seeded = lint::lint_source(
        "crates/core/src/node.rs",
        "fn sneak(x: f64) -> f64 { x.ln() }",
    );
    if seeded.iter().any(|f| f.rule == "float-transcendental") {
        println!("selftest: seeded f64::ln call caught by float-transcendental lint");
    } else {
        println!("selftest: FAIL — seeded float-transcendental violation went undetected");
        ok = false;
    }
    // A thread started outside the epoch driver and the sweep harness.
    let seeded = lint::lint_source(
        "crates/workloads/src/apps/em3d.rs",
        "fn sneak() { std::thread::spawn(|| {}); }",
    );
    if seeded.iter().any(|f| f.rule == "thread-spawn") {
        println!("selftest: seeded thread::spawn caught by thread-spawn lint");
    } else {
        println!("selftest: FAIL — seeded thread-spawn violation went undetected");
        ok = false;
    }
    // A shared-state cell outside the sanctioned result sinks.
    let seeded = lint::lint_source(
        "crates/workloads/src/apps/moldyn.rs",
        "struct S { cell: Arc<Mutex<u64>> }",
    );
    if seeded.iter().any(|f| f.rule == "arc-mutex") {
        println!("selftest: seeded Arc<Mutex> sink caught by arc-mutex lint");
    } else {
        println!("selftest: FAIL — seeded arc-mutex violation went undetected");
        ok = false;
    }
    // The epoch checker must pass the real merge algorithm and catch
    // both seeded engine mutants: a lookahead one tick too short, and a
    // cross-lane footprint overlap.
    let clean = EpochChecker::new().check();
    if clean.violation_count == 0 {
        println!(
            "selftest: epoch merge verified over {} configs ({} cuts)",
            clean.configs, clean.cuts
        );
    } else {
        println!("selftest: FAIL — clean epoch merge reported violations:");
        for v in clean.violations.iter().take(3) {
            println!("  {v}");
        }
        ok = false;
    }
    let mutant = EpochChecker::with_lookahead_mutant().check();
    if mutant.violation_count == 0 {
        println!("selftest: FAIL — 39 ns lookahead mutant went undetected");
        ok = false;
    } else {
        println!(
            "selftest: 39 ns lookahead mutant caught ({} violations), e.g.:",
            mutant.violation_count
        );
        if let Some(v) = mutant.violations.first() {
            println!("  {v}");
        }
    }
    let mutant = EpochChecker::with_footprint_mutant().check();
    if mutant.violation_count == 0 {
        println!("selftest: FAIL — overlapping-footprint mutant went undetected");
        ok = false;
    } else {
        println!(
            "selftest: overlapping-footprint mutant caught ({} violations), e.g.:",
            mutant.violation_count
        );
        if let Some(v) = mutant.violations.first() {
            println!("  {v}");
        }
    }
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("all");
    let ok = match mode {
        "check" => run_check(),
        "epoch-check" => run_epoch_check(),
        "audit" => run_audit(),
        "lint" if args.iter().any(|a| a == "--write-allow") => run_write_allow(),
        "lint" => run_lint(),
        "selftest" => run_selftest(),
        "all" => {
            let c = run_check();
            let e = run_epoch_check();
            let l = run_lint();
            let s = run_selftest();
            c && e && l && s
        }
        other => {
            eprintln!(
                "unknown subcommand `{other}`; use check | epoch-check | audit | \
                 lint [--write-allow] | selftest | all"
            );
            false
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
