//! `nisim-analysis` command line: model check, lint, and the seeded
//! mutant self-test. Exit status is nonzero on any finding, so CI can
//! gate on it directly.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use nisim_analysis::moesi_check::MoesiChecker;
use nisim_analysis::{lint, protocol_check};

/// The repository root, resolved from this crate's manifest directory
/// so the binary works from any working directory.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analysis sits two levels below the repo root")
        .to_path_buf()
}

fn run_check() -> bool {
    let moesi = MoesiChecker::new().check();
    println!(
        "model check: MOESI cross-product + bus search: {} states, {} transitions",
        moesi.states, moesi.transitions
    );
    let proto = protocol_check::check();
    println!(
        "model check: reliability x flow-control: {} states, {} transitions",
        proto.states, proto.transitions
    );
    let mut ok = true;
    for v in moesi.violations.iter().chain(&proto.violations) {
        println!("VIOLATION: {v}");
        ok = false;
    }
    if ok {
        println!("model check: all invariants hold");
    }
    ok
}

fn run_lint() -> bool {
    let root = repo_root();
    let allow_path = root.join("crates/analysis/lint-allow.txt");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => lint::parse_allowlist(&text),
        Err(_) => Default::default(),
    };
    let out = lint::lint_tree(&root, &allow);
    println!(
        "lint: {} files, {} findings, {} stale allowlist entries",
        out.files,
        out.findings.len(),
        out.stale_allows.len()
    );
    for f in &out.findings {
        println!("FINDING: {f}");
    }
    for s in &out.stale_allows {
        println!("STALE ALLOWLIST ENTRY: {s} (remove it from lint-allow.txt)");
    }
    out.is_clean()
}

/// Proves the checker catches regressions: the clean protocol must
/// pass and the seeded mutant (a `Modified` holder surrendering
/// ownership on a read snoop) must fail.
fn run_selftest() -> bool {
    let mut ok = true;
    let clean = MoesiChecker::new().check();
    if clean.violations.is_empty() {
        println!("selftest: clean protocol passes ({} states)", clean.states);
    } else {
        println!("selftest: FAIL — clean protocol reported violations:");
        for v in &clean.violations {
            println!("  {v}");
        }
        ok = false;
    }
    let mutant = MoesiChecker::with_mutant().check();
    if mutant.violations.is_empty() {
        println!("selftest: FAIL — seeded MOESI mutant went undetected");
        ok = false;
    } else {
        println!(
            "selftest: seeded mutant caught ({} violations), e.g.:",
            mutant.violations.len()
        );
        if let Some(v) = mutant.violations.first() {
            println!("  {v}");
        }
    }
    // The protocol checker must likewise be able to find a deadlock: an
    // adversary with one more drop than the sender has transmissions
    // wedges the handshake.
    let wedge = protocol_check::ProtocolConfig {
        fragments: 1,
        buffers: 1,
        drop_budget: 3,
        dup_budget: 0,
        max_retries: 2,
    };
    let out = protocol_check::explore(&wedge);
    if out.violations.iter().any(|v| v.contains("deadlock")) {
        println!("selftest: over-budget drop adversary deadlock detected");
    } else {
        println!("selftest: FAIL — expected deadlock went undetected");
        ok = false;
    }
    // The lint must likewise catch a seeded violation of every rule it
    // would actually fire on in the tree — here, a raw metrics-counter
    // mutation smuggled outside the metrics module.
    let seeded = lint::lint_source(
        "crates/core/src/machine.rs",
        "fn sneak(c: &mut ComponentCycles) { c.raw_add(Component::ProcSend, 1); }",
    );
    if seeded.iter().any(|f| f.rule == "metrics-raw") {
        println!("selftest: seeded raw-counter mutation caught by metrics-raw lint");
    } else {
        println!("selftest: FAIL — seeded metrics-raw violation went undetected");
        ok = false;
    }
    // And a sim-crate filesystem write smuggled outside the sanctioned
    // snapshot/trace serialisation modules.
    let seeded = lint::lint_source(
        "crates/net/src/reliability.rs",
        "fn sneak() { let _ = std::fs::write(\"/tmp/x\", b\"state\"); }",
    );
    if seeded.iter().any(|f| f.rule == "fs-write") {
        println!("selftest: seeded sim-crate filesystem write caught by fs-write lint");
    } else {
        println!("selftest: FAIL — seeded fs-write violation went undetected");
        ok = false;
    }
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("all");
    let ok = match mode {
        "check" => run_check(),
        "lint" => run_lint(),
        "selftest" => run_selftest(),
        "all" => {
            let c = run_check();
            let l = run_lint();
            let s = run_selftest();
            c && l && s
        }
        other => {
            eprintln!("unknown subcommand `{other}`; use check | lint | selftest | all");
            false
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
