//! Determinism and robustness lint for the simulator sources.
//!
//! A hand-rolled Rust tokenizer (comments, strings, char-vs-lifetime
//! disambiguation) feeding ten token-level rules:
//!
//! * `hash-collections` — `HashMap`/`HashSet` are banned in the crates
//!   whose state feeds sweep records and golden files
//!   (`engine`/`mem`/`net`/`core`/`workloads`/`bench`): their iteration
//!   order is seeded per-process, so any aggregation or serialization
//!   walking one is a nondeterminism hazard. Use `BTreeMap`/`BTreeSet`
//!   or an indexed `Vec`. (`cli` is exempt: its only maps hold parsed
//!   command-line flags, which are looked up by key and never
//!   iterated into output.)
//! * `wall-clock` — `Instant::now`/`SystemTime`/ambient randomness are
//!   banned in `core`/`engine`/`mem`/`net`: simulated time must be the
//!   only clock, and every run must be bit-reproducible. (`bench`
//!   measures real elapsed time by design and is exempt.)
//! * `panic-path` — `.unwrap()`/`.expect()`/`panic!` are banned in the
//!   simulation hot paths (the event loop, the timing wheel, and the
//!   machine/NI dispatch) outside the committed allowlist; a mid-sweep
//!   panic loses the whole parallel run.
//! * `wildcard-dispatch` — `_ =>` arms are banned in matches that
//!   dispatch over `MachineEvent`, `BusOp`, `MoesiState`, `SnoopKind`
//!   or `NiKind`, so adding a variant (e.g. a new NI model) fails to
//!   compile instead of silently falling through.
//! * `metrics-raw` — `.raw_add()`/`.raw_record()` calls are banned
//!   outside `crates/engine/src/metrics.rs`: they bypass the
//!   sum-to-total invariant the observability layer's safe API
//!   (`charge`/`record`) maintains, and exist only for the metrics
//!   module's own merge/deserialize paths.
//! * `fs-write` — filesystem mutation (`fs::write`, `File::create`,
//!   `OpenOptions`, directory surgery) is banned in the simulation
//!   crates (`engine`/`mem`/`net`/`core`/`workloads`) outside the two
//!   sanctioned serialisation exits, the snapshot and trace modules: a
//!   hidden write is a side channel no golden or record tracks, and a
//!   re-run that silently appends to one is no longer reproducible.
//!   (`bench` and `cli` write goldens, records and traces by design.)
//! * `sync-primitives` — `std::sync` locks, atomics, channels and
//!   lazy-init cells are banned in the sim-state crates
//!   (`engine`/`mem`/`net`/`core`) outside `crates/core/src/epoch.rs`:
//!   the epoch driver is the single sanctioned concurrency boundary,
//!   and it only parallelizes windows it can replay back into the
//!   exact serial order. A lock or atomic anywhere else lets
//!   thread-timing-ordered state leak into records and goldens.
//!   (`workloads` and `bench` may use `Arc<Mutex<...>>` for collecting
//!   results after a run; that data never feeds back into the
//!   simulation.)
//! * `float-transcendental` — `.ln()`/`.exp()`/`.powf()` and friends
//!   are banned in the sim crates outside
//!   `crates/workloads/src/traffic.rs`: transcendentals go through
//!   libm, whose last-bit rounding varies across platforms and libc
//!   versions, so any timing derived from one de-synchronizes goldens.
//!   The traffic module owns `det_ln`, the deterministic polynomial
//!   alternative. (IEEE-exact operations — `sqrt`, arithmetic — stay
//!   legal.)
//! * `thread-spawn` — `thread::spawn`/`thread::scope`/`thread::Builder`
//!   are banned everywhere except the epoch driver
//!   (`crates/core/src/epoch.rs`) and the sweep harness
//!   (`crates/bench/src/harness.rs`): a thread started anywhere else is
//!   concurrency the epoch replay cannot see, let alone serialize.
//! * `arc-mutex` — `Arc<Mutex<...>>`/`Arc<RwLock<...>>` in
//!   `workloads`/`bench` (the crates `sync-primitives` exempts) are
//!   confined to the three sanctioned result sinks (`traffic.rs`,
//!   `micro/pingpong.rs`, `micro/bandwidth.rs`); a new shared-state
//!   cell must be reviewed, not silently added.
//!
//! `#[cfg(test)]` items are skipped everywhere: tests may unwrap.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// One token of Rust source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (also `_`).
    Ident(String),
    /// Single punctuation character.
    Punct(char),
    /// String/char/number literal (content irrelevant to the rules).
    Lit,
}

/// A token plus the 1-based line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Tokenizes Rust source, skipping whitespace and comments and
/// collapsing literals. Lifetimes (`'a`) are dropped entirely; char
/// literals become [`Tok::Lit`].
pub fn tokenize(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start = line;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Token {
                    tok: Tok::Lit,
                    line: start,
                });
            }
            b'\'' => {
                // Char literal or lifetime. A lifetime is `'` + ident
                // with no closing quote.
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: consume to the closing quote.
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    toks.push(Token {
                        tok: Tok::Lit,
                        line,
                    });
                } else if b.get(i + 2) == Some(&b'\'') {
                    i += 3;
                    toks.push(Token {
                        tok: Tok::Lit,
                        line,
                    });
                } else {
                    // Lifetime: skip the quote and its identifier.
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
            }
            c if c.is_ascii_digit() => {
                // A `.` continues the literal only before another digit,
                // so `x.0.unwrap()` keeps `unwrap` as its own token.
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric()
                        || b[i] == b'_'
                        || (b[i] == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit)))
                {
                    i += 1;
                }
                toks.push(Token {
                    tok: Tok::Lit,
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let ident = &src[start..i];
                // Raw and byte string prefixes: r"..", r#".."#, b"..", br"..".
                if matches!(ident, "r" | "b" | "br" | "rb") {
                    let mut hashes = 0;
                    let mut j = i;
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&b'"') {
                        j += 1;
                        'scan: while j < b.len() {
                            if b[j] == b'\n' {
                                line += 1;
                            } else if b[j] == b'"' {
                                let mut k = 0;
                                while k < hashes && b.get(j + 1 + k) == Some(&b'#') {
                                    k += 1;
                                }
                                if k == hashes {
                                    j += 1 + hashes;
                                    break 'scan;
                                }
                            } else if ident.starts_with('b') && hashes == 0 && b[j] == b'\\' {
                                j += 1;
                            }
                            j += 1;
                        }
                        i = j;
                        toks.push(Token {
                            tok: Tok::Lit,
                            line,
                        });
                        continue;
                    }
                    if ident == "b" && b.get(i) == Some(&b'\'') {
                        i += 1; // opening quote of a byte literal
                        if b.get(i) == Some(&b'\\') {
                            i += 1;
                        }
                        while i < b.len() && b[i] != b'\'' {
                            i += 1;
                        }
                        i += 1;
                        toks.push(Token {
                            tok: Tok::Lit,
                            line,
                        });
                        continue;
                    }
                }
                toks.push(Token {
                    tok: Tok::Ident(ident.to_string()),
                    line,
                });
            }
            c => {
                toks.push(Token {
                    tok: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    pub line: u32,
    /// Rule slug.
    pub rule: &'static str,
    pub message: String,
}

impl Finding {
    /// The exact-match key an allowlist entry must equal to suppress
    /// this finding.
    pub fn key(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.rule)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Marks the token index ranges covered by `#[cfg(test)]` items so the
/// rules can skip them. Returns a bool per token: true = excluded.
fn test_cfg_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].tok == Tok::Punct('#')
            && toks[i + 1].tok == Tok::Punct('[')
            && toks[i + 2].tok == Tok::Ident("cfg".into())
            && toks[i + 3].tok == Tok::Punct('(')
            && toks[i + 4].tok == Tok::Ident("test".into())
            && toks[i + 5].tok == Tok::Punct(')')
            && toks[i + 6].tok == Tok::Punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Exclude from the attribute to the end of the annotated item:
        // either the matching `}` of its first brace block, or the next
        // `;` at depth zero (e.g. a gated `use`).
        let mut j = i + 7;
        let mut depth = 0usize;
        let mut entered = false;
        while j < toks.len() {
            match toks[j].tok {
                Tok::Punct('{') => {
                    depth += 1;
                    entered = true;
                }
                Tok::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        break;
                    }
                }
                Tok::Punct(';') if !entered => break,
                _ => {}
            }
            j += 1;
        }
        for m in mask.iter_mut().take((j + 1).min(toks.len())).skip(i) {
            *m = true;
        }
        i = j + 1;
    }
    mask
}

/// Crates whose iteration order can leak into records/goldens.
const HASH_SCOPE: [&str; 6] = [
    "crates/engine/src/",
    "crates/mem/src/",
    "crates/net/src/",
    "crates/core/src/",
    "crates/workloads/src/",
    "crates/bench/src/",
];

/// Crates that must be wall-clock- and entropy-free. (`bench` and `cli`
/// stay exempt: they measure real elapsed time by design.)
const CLOCK_SCOPE: [&str; 6] = [
    "crates/core/src/",
    "crates/engine/src/",
    "crates/mem/src/",
    "crates/net/src/",
    "crates/workloads/src/",
    "crates/analysis/src/",
];

/// The only file allowed to touch the raw metrics counters.
const METRICS_MODULE: &str = "crates/engine/src/metrics.rs";

/// Simulation hot paths: a panic here kills a whole parallel sweep.
const HOT_PATHS: [&str; 6] = [
    "crates/engine/src/sim.rs",
    "crates/engine/src/wheel.rs",
    "crates/core/src/machine.rs",
    "crates/core/src/event.rs",
    "crates/core/src/node.rs",
    "crates/core/src/ni/",
];

/// Enums whose dispatch matches must stay exhaustive.
const DISPATCH_ENUMS: [&str; 5] = ["MachineEvent", "BusOp", "MoesiState", "SnoopKind", "NiKind"];

/// Crates whose code must not mutate the filesystem: any state a sim
/// crate persists must flow through a sanctioned serialisation exit.
const FS_SCOPE: [&str; 5] = [
    "crates/engine/src/",
    "crates/mem/src/",
    "crates/net/src/",
    "crates/core/src/",
    "crates/workloads/src/",
];

/// The sanctioned serialisation exits: checkpoint files and trace logs.
const FS_WRITERS: [&str; 2] = ["crates/core/src/snapshot.rs", "crates/engine/src/trace.rs"];

/// Crates whose state drives the simulation and therefore must not hold
/// thread-synchronization primitives: any cross-thread choreography
/// belongs to the epoch driver, which replays it deterministically.
const SYNC_SCOPE: [&str; 4] = [
    "crates/engine/src/",
    "crates/mem/src/",
    "crates/net/src/",
    "crates/core/src/",
];

/// The single sanctioned concurrency boundary.
const SYNC_MODULE: &str = "crates/core/src/epoch.rs";

/// `std::sync` types whose mere presence in sim state is a
/// nondeterminism hazard. Atomics are caught by prefix (`Atomic*`).
const SYNC_PRIMITIVES: [&str; 7] = [
    "Mutex", "RwLock", "Condvar", "Barrier", "OnceLock", "LazyLock", "mpsc",
];

/// `std::fs` functions that mutate the filesystem (reads stay legal).
const FS_MUTATORS: [&str; 9] = [
    "write",
    "create_dir",
    "create_dir_all",
    "remove_file",
    "remove_dir",
    "remove_dir_all",
    "rename",
    "copy",
    "set_permissions",
];

/// Crates whose arithmetic feeds timing, records and goldens, and so
/// must avoid platform-dependent libm rounding.
const FLOAT_SCOPE: [&str; 5] = [
    "crates/engine/src/",
    "crates/mem/src/",
    "crates/net/src/",
    "crates/core/src/",
    "crates/workloads/src/",
];

/// Home of `det_ln`, the deterministic polynomial logarithm; the one
/// module allowed to reference libm transcendentals (its tests compare
/// against them).
const FLOAT_MODULE: &str = "crates/workloads/src/traffic.rs";

/// `f64`/`f32` methods routed through libm, whose last-bit rounding is
/// platform-dependent. IEEE-exact operations (`sqrt`, arithmetic,
/// `abs`, `powi`-free integer math) are not listed and stay legal.
const TRANSCENDENTALS: [&str; 24] = [
    "ln", "log", "log2", "log10", "ln_1p", "exp", "exp2", "exp_m1", "powf", "sin", "cos", "tan",
    "asin", "acos", "atan", "atan2", "sinh", "cosh", "tanh", "asinh", "acosh", "atanh", "cbrt",
    "hypot",
];

/// The only files allowed to start OS threads: the epoch driver (the
/// sanctioned concurrency boundary) and the sweep harness (whose
/// workers run disjoint configs).
const THREAD_MODULES: [&str; 2] = ["crates/core/src/epoch.rs", "crates/bench/src/harness.rs"];

/// Crates exempt from `sync-primitives` whose shared-state cells are
/// still confined to named sinks by the `arc-mutex` rule.
const ARC_SCOPE: [&str; 2] = ["crates/workloads/src/", "crates/bench/src/"];

/// The sanctioned result sinks: data collected behind these locks is
/// read only after the run, never fed back into the simulation.
const ARC_SINKS: [&str; 3] = [
    "crates/workloads/src/traffic.rs",
    "crates/workloads/src/micro/pingpong.rs",
    "crates/workloads/src/micro/bandwidth.rs",
];

fn in_scope(file: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| file.starts_with(p))
}

/// Runs every rule over one file's source.
pub fn lint_source(file: &str, src: &str) -> Vec<Finding> {
    let toks = tokenize(src);
    let excluded = test_cfg_mask(&toks);
    let mut findings = Vec::new();
    let ident = |i: usize| -> Option<&str> {
        match &toks.get(i)?.tok {
            Tok::Ident(s) if !excluded[i] => Some(s),
            _ => None,
        }
    };
    let punct_at = |i: usize, c: char| toks.get(i).map(|t| t.tok == Tok::Punct(c)) == Some(true);

    if in_scope(file, &HASH_SCOPE) {
        for (i, t) in toks.iter().enumerate() {
            if let Some(name @ ("HashMap" | "HashSet")) = ident(i) {
                findings.push(Finding {
                    file: file.into(),
                    line: t.line,
                    rule: "hash-collections",
                    message: format!(
                        "{name} has seeded iteration order; use BTreeMap/BTreeSet or a Vec"
                    ),
                });
            }
        }
    }

    if in_scope(file, &CLOCK_SCOPE) {
        for (i, t) in toks.iter().enumerate() {
            let bad = match ident(i) {
                Some("SystemTime") => Some("SystemTime reads the wall clock"),
                Some("thread_rng") | Some("from_entropy") | Some("RandomState") => {
                    Some("ambient randomness breaks reproducibility")
                }
                Some("Instant")
                    if punct_at(i + 1, ':')
                        && punct_at(i + 2, ':')
                        && ident(i + 3) == Some("now") =>
                {
                    Some("Instant::now reads the wall clock")
                }
                _ => None,
            };
            if let Some(message) = bad {
                findings.push(Finding {
                    file: file.into(),
                    line: t.line,
                    rule: "wall-clock",
                    message: format!("{message}; simulated time is the only clock"),
                });
            }
        }
    }

    if in_scope(file, &HOT_PATHS) {
        for (i, t) in toks.iter().enumerate() {
            let hit = match ident(i) {
                Some(name @ ("unwrap" | "expect")) if i > 0 && punct_at(i - 1, '.') => {
                    Some(format!(".{name}() can panic mid-sweep"))
                }
                Some("panic") if punct_at(i + 1, '!') => {
                    Some("panic! aborts the whole parallel sweep".to_string())
                }
                _ => None,
            };
            if let Some(message) = hit {
                findings.push(Finding {
                    file: file.into(),
                    line: t.line,
                    rule: "panic-path",
                    message,
                });
            }
        }
    }

    if file != METRICS_MODULE {
        for (i, t) in toks.iter().enumerate() {
            if let Some(name @ ("raw_add" | "raw_record")) = ident(i) {
                if i > 0 && punct_at(i - 1, '.') && punct_at(i + 1, '(') {
                    findings.push(Finding {
                        file: file.into(),
                        line: t.line,
                        rule: "metrics-raw",
                        message: format!(
                            ".{name}() bypasses the sum-to-total invariant; use the \
                             charge/record API (raw counters live in {METRICS_MODULE} only)"
                        ),
                    });
                }
            }
        }
    }

    if in_scope(file, &FS_SCOPE) && !FS_WRITERS.contains(&file) {
        for (i, t) in toks.iter().enumerate() {
            let hit = match ident(i) {
                Some("fs") if punct_at(i + 1, ':') && punct_at(i + 2, ':') => match ident(i + 3) {
                    Some(name) if FS_MUTATORS.contains(&name) => {
                        Some(format!("fs::{name} mutates the filesystem"))
                    }
                    _ => None,
                },
                Some("File")
                    if punct_at(i + 1, ':')
                        && punct_at(i + 2, ':')
                        && matches!(ident(i + 3), Some("create") | Some("options")) =>
                {
                    Some("File::create opens a file for writing".to_string())
                }
                Some("OpenOptions") => Some("OpenOptions can open files for writing".to_string()),
                _ => None,
            };
            if let Some(message) = hit {
                findings.push(Finding {
                    file: file.into(),
                    line: t.line,
                    rule: "fs-write",
                    message: format!(
                        "{message}; sim crates persist state through the snapshot/trace \
                         modules only"
                    ),
                });
            }
        }
    }

    if in_scope(file, &SYNC_SCOPE) && file != SYNC_MODULE {
        for (i, t) in toks.iter().enumerate() {
            if let Some(name) = ident(i) {
                if SYNC_PRIMITIVES.contains(&name)
                    || (name.starts_with("Atomic") && name.len() > "Atomic".len())
                {
                    findings.push(Finding {
                        file: file.into(),
                        line: t.line,
                        rule: "sync-primitives",
                        message: format!(
                            "{name} in sim state orders events by thread timing; cross-thread \
                             choreography lives in {SYNC_MODULE} only"
                        ),
                    });
                }
            }
        }
    }

    if in_scope(file, &FLOAT_SCOPE) && file != FLOAT_MODULE {
        for (i, t) in toks.iter().enumerate() {
            let Some(name) = ident(i) else { continue };
            if !TRANSCENDENTALS.contains(&name) {
                continue;
            }
            // Method form `x.ln()` or path form `f64::ln(x)`; a bare
            // identifier (a variable named `exp`, a field `log`) is not
            // a libm call and stays quiet.
            let method = i > 0 && punct_at(i - 1, '.') && punct_at(i + 1, '(');
            let path = i >= 3
                && punct_at(i - 1, ':')
                && punct_at(i - 2, ':')
                && matches!(ident(i - 3), Some("f64") | Some("f32"));
            if method || path {
                findings.push(Finding {
                    file: file.into(),
                    line: t.line,
                    rule: "float-transcendental",
                    message: format!(
                        "{name} goes through libm, whose rounding varies by platform; use \
                         traffic::det_ln or integer math so goldens stay portable"
                    ),
                });
            }
        }
    }

    if !THREAD_MODULES.contains(&file) {
        for (i, t) in toks.iter().enumerate() {
            if ident(i) == Some("thread")
                && punct_at(i + 1, ':')
                && punct_at(i + 2, ':')
                && matches!(
                    ident(i + 3),
                    Some("spawn") | Some("scope") | Some("Builder")
                )
            {
                let target = ident(i + 3).unwrap_or("spawn");
                findings.push(Finding {
                    file: file.into(),
                    line: t.line,
                    rule: "thread-spawn",
                    message: format!(
                        "thread::{target} outside the epoch driver and the sweep harness is \
                         concurrency the epoch replay cannot serialize"
                    ),
                });
            }
        }
    }

    if in_scope(file, &ARC_SCOPE) && !ARC_SINKS.contains(&file) {
        for (i, t) in toks.iter().enumerate() {
            if ident(i) == Some("Arc")
                && punct_at(i + 1, '<')
                && matches!(ident(i + 2), Some("Mutex") | Some("RwLock"))
            {
                let inner = ident(i + 2).unwrap_or("Mutex");
                findings.push(Finding {
                    file: file.into(),
                    line: t.line,
                    rule: "arc-mutex",
                    message: format!(
                        "Arc<{inner}<...>> outside the sanctioned result sinks; shared-state \
                         cells in workloads/bench are confined to the named sink modules"
                    ),
                });
            }
        }
    }

    // wildcard-dispatch applies everywhere: find each `match` body and,
    // if it mentions a dispatch enum, forbid bare `_ =>` arms inside it.
    for i in 0..toks.len() {
        if excluded[i] || toks[i].tok != Tok::Ident("match".into()) {
            continue;
        }
        let Some(open) = (i + 1..toks.len()).find(|&j| toks[j].tok == Tok::Punct('{')) else {
            continue;
        };
        let mut depth = 0usize;
        let mut close = open;
        for (j, t) in toks.iter().enumerate().skip(open) {
            match t.tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        close = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        let body = &toks[open..=close.min(toks.len() - 1)];
        let mentions = body.iter().any(|t| match &t.tok {
            Tok::Ident(s) => DISPATCH_ENUMS.contains(&s.as_str()),
            _ => false,
        });
        if !mentions {
            continue;
        }
        for (k, t) in body.iter().enumerate() {
            if excluded[open + k] {
                continue;
            }
            if t.tok == Tok::Ident("_".into())
                && body.get(k + 1).map(|t| &t.tok) == Some(&Tok::Punct('='))
                && body.get(k + 2).map(|t| &t.tok) == Some(&Tok::Punct('>'))
            {
                findings.push(Finding {
                    file: file.into(),
                    line: t.line,
                    rule: "wildcard-dispatch",
                    message: "wildcard arm in a dispatch match; enumerate the variants so new \
                              ones fail loudly"
                        .into(),
                });
            }
        }
    }

    findings.sort();
    findings.dedup();
    findings
}

/// Result of a full lint run.
#[derive(Clone, Debug, Default)]
pub struct LintOutcome {
    /// Findings not suppressed by the allowlist, sorted.
    pub findings: Vec<Finding>,
    /// Allowlist entries that matched no finding (stale suppressions).
    pub stale_allows: Vec<String>,
    /// Files scanned.
    pub files: usize,
}

impl LintOutcome {
    /// True when the tree is clean and the allowlist exact.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale_allows.is_empty()
    }
}

/// Parses the allowlist: one `file:line:rule` key per line; `#` starts
/// a comment; blank lines are skipped.
pub fn parse_allowlist(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect()
}

/// Renders a fresh allowlist from the findings of an allowlist-free
/// lint run: one exact `file:line:rule` key per line, sorted, under a
/// header explaining the contract. `lint --write-allow` writes this so
/// the committed file regenerates mechanically instead of rotting when
/// line numbers shift.
pub fn render_allowlist(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# nisim lint allowlist — exact file:line:rule suppressions.\n\
         # Regenerate with `cargo run -p nisim-analysis -- lint --write-allow`\n\
         # after reviewing each entry; stale entries fail the lint.\n",
    );
    let mut keys: Vec<String> = findings.iter().map(Finding::key).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        out.push_str(&key);
        out.push('\n');
    }
    out
}

/// Deterministic recursive listing of the `.rs` files under `dir`,
/// repo-relative. Directories named `tests` are skipped — integration
/// tests may unwrap and iterate however they like.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "tests") {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints every simulator source file under `repo_root` and applies the
/// allowlist.
pub fn lint_tree(repo_root: &Path, allowlist: &BTreeSet<String>) -> LintOutcome {
    let mut files = Vec::new();
    rust_files(&repo_root.join("crates"), &mut files);
    let mut out = LintOutcome::default();
    let mut used: BTreeSet<String> = BTreeSet::new();
    for path in files {
        let rel = path
            .strip_prefix(repo_root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        out.files += 1;
        for finding in lint_source(&rel, &src) {
            let key = finding.key();
            if allowlist.contains(&key) {
                used.insert(key);
            } else {
                out.findings.push(finding);
            }
        }
    }
    out.stale_allows = allowlist.difference(&used).cloned().collect();
    out.findings.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn tokenizer_skips_comments_strings_and_lifetimes() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap in /* a nested */ block */
            fn f<'unwrap>(x: &'unwrap str) -> u32 {
                let s = "HashMap::unwrap()";
                let r = r#"SystemTime "quoted" here"#;
                let c = 'x';
                let esc = '\n';
                let b = b"panic!";
                s.len() as u32 + r.len() as u32
            }
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"len".to_string()));
    }

    #[test]
    fn tokenizer_tracks_lines() {
        let toks = tokenize("a\nbb\n\ncc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn hash_rule_fires() {
        let f = lint_source(
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }",
        );
        assert!(f
            .iter()
            .any(|f| f.rule == "hash-collections" && f.line == 1));
        // Out of scope: same source in the cli crate is fine.
        assert!(lint_source("crates/cli/src/x.rs", "use std::collections::HashMap;").is_empty());
    }

    #[test]
    fn wall_clock_rule_fires() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let f = lint_source("crates/engine/src/x.rs", src);
        assert!(f.iter().any(|f| f.rule == "wall-clock"));
        let f = lint_source("crates/net/src/x.rs", "use std::time::SystemTime;");
        assert!(f.iter().any(|f| f.rule == "wall-clock"));
        // `Instant` alone (e.g. in a type) is fine; only `::now` is banned.
        assert!(lint_source("crates/engine/src/x.rs", "fn f(t: Instant) {}").is_empty());
        // bench is exempt: it measures real time by design.
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_fires_only_in_hot_paths() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let f = lint_source("crates/engine/src/sim.rs", src);
        assert!(f.iter().any(|f| f.rule == "panic-path"));
        let f = lint_source("crates/core/src/ni/cm5.rs", "fn f() { panic!(\"boom\") }");
        assert!(f.iter().any(|f| f.rule == "panic-path"));
        // `unwrap_or` is a different identifier and must not fire.
        assert!(lint_source(
            "crates/engine/src/sim.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }"
        )
        .is_empty());
        // Outside the hot paths the rule stays quiet.
        assert!(lint_source("crates/mem/src/cache.rs", src).is_empty());
    }

    #[test]
    fn wildcard_rule_fires_on_dispatch_matches_only() {
        let dispatch = "fn f(e: MachineEvent) { match e { MachineEvent::Tick => (), _ => () } }";
        let f = lint_source("crates/core/src/x.rs", dispatch);
        assert!(f.iter().any(|f| f.rule == "wildcard-dispatch"));
        // A match over something else may use wildcards freely.
        let other = "fn f(x: u32) -> u32 { match x { 0 => 1, _ => 2 } }";
        assert!(lint_source("crates/core/src/x.rs", other).is_empty());
        // NiKind is a dispatch enum too: a wildcard arm would silently
        // swallow a newly added NI model.
        let ni = "fn f(k: NiKind) -> u32 { match k { NiKind::Cm5 => 1, _ => 0 } }";
        assert!(lint_source("crates/core/src/ni/mod.rs", ni)
            .iter()
            .any(|f| f.rule == "wildcard-dispatch"));
        // Tuple patterns with `_` components are not bare wildcard arms.
        let tuple = "fn f(s: MoesiState, k: SnoopKind) { match (s, k) { (_, SnoopKind::Read) => (), (s2, _) => { let _ = s2; } } }";
        assert!(lint_source("crates/mem/src/x.rs", tuple).is_empty());
    }

    #[test]
    fn metrics_raw_rule_fires_everywhere_but_the_metrics_module() {
        let src = "fn f(c: &mut ComponentCycles) { c.raw_add(Component::ProcSend, 5); }";
        for file in [
            "crates/core/src/machine.rs",
            "crates/bench/src/harness.rs",
            "crates/engine/src/trace.rs",
        ] {
            let f = lint_source(file, src);
            assert!(f.iter().any(|f| f.rule == "metrics-raw"), "{file}");
        }
        let hist = "fn f(h: &mut Log2Hist) { h.raw_record(3, 1); }";
        assert!(lint_source("crates/net/src/reliability.rs", hist)
            .iter()
            .any(|f| f.rule == "metrics-raw"));
        // The metrics module itself owns the raw counters.
        assert!(lint_source("crates/engine/src/metrics.rs", src).is_empty());
        // The safe API and mere mentions of the name do not fire.
        assert!(lint_source(
            "crates/core/src/machine.rs",
            "fn f(c: &mut ComponentCycles) { c.charge(Component::ProcSend, Dur::ns(5)); }"
        )
        .is_empty());
        assert!(lint_source("crates/core/src/machine.rs", "fn raw_add() {}").is_empty());
    }

    #[test]
    fn fs_write_rule_fires_outside_the_sanctioned_modules() {
        let src = "fn f() { std::fs::write(\"x\", b\"y\").ok(); }";
        for file in [
            "crates/net/src/x.rs",
            "crates/core/src/machine.rs",
            "crates/engine/src/sim.rs",
            "crates/workloads/src/skeleton.rs",
        ] {
            assert!(
                lint_source(file, src).iter().any(|f| f.rule == "fs-write"),
                "{file}"
            );
        }
        // The two sanctioned serialisation exits are exempt.
        assert!(lint_source("crates/core/src/snapshot.rs", src).is_empty());
        assert!(lint_source("crates/engine/src/trace.rs", src).is_empty());
        // bench and cli write goldens, records and traces by design.
        assert!(lint_source("crates/bench/src/bin/goldens.rs", src).is_empty());
        assert!(lint_source("crates/cli/src/lib.rs", src).is_empty());
        // Reads stay legal everywhere.
        assert!(lint_source(
            "crates/core/src/x.rs",
            "fn f() { let _ = std::fs::read_to_string(\"x\"); }"
        )
        .is_empty());
        // File::create and OpenOptions are writes too.
        assert!(lint_source(
            "crates/net/src/x.rs",
            "fn f() { let _ = std::fs::File::create(\"x\"); }"
        )
        .iter()
        .any(|f| f.rule == "fs-write"));
        assert!(
            lint_source("crates/mem/src/x.rs", "use std::fs::OpenOptions;")
                .iter()
                .any(|f| f.rule == "fs-write")
        );
        // `write` without the fs:: path (fmt::Write, io buffers) is fine.
        assert!(lint_source(
            "crates/net/src/x.rs",
            "fn f(w: &mut String) { w.write_str(\"x\").ok(); }"
        )
        .is_empty());
        // Tests may write scratch files.
        assert!(lint_source(
            "crates/net/src/x.rs",
            "#[cfg(test)]\nmod tests { fn t() { std::fs::write(\"x\", b\"y\").ok(); } }"
        )
        .is_empty());
    }

    #[test]
    fn sync_rule_fires_in_sim_state_crates_outside_the_epoch_module() {
        // Seeded violations: each primitive smuggled into a sim-state
        // crate must fire.
        for src in [
            "use std::sync::Mutex;\nstruct S { m: Mutex<u32> }",
            "use std::sync::RwLock;",
            "use std::sync::atomic::AtomicU64;\nstatic N: AtomicU64 = AtomicU64::new(0);",
            "use std::sync::atomic::AtomicBool;",
            "use std::sync::mpsc;",
            "use std::sync::{Condvar, OnceLock};",
        ] {
            for file in [
                "crates/engine/src/sim.rs",
                "crates/mem/src/cache.rs",
                "crates/net/src/fabric.rs",
                "crates/core/src/machine.rs",
            ] {
                assert!(
                    lint_source(file, src)
                        .iter()
                        .any(|f| f.rule == "sync-primitives"),
                    "{file}: {src}"
                );
            }
        }
        // The epoch driver is the sanctioned concurrency boundary.
        assert!(lint_source(
            "crates/core/src/epoch.rs",
            "use std::sync::{Mutex, RwLock};\nuse std::sync::atomic::AtomicUsize;"
        )
        .is_empty());
        // workloads/bench collect results through Arc<Mutex> by design.
        assert!(lint_source("crates/workloads/src/x.rs", "use std::sync::Mutex;").is_empty());
        assert!(lint_source("crates/bench/src/harness.rs", "use std::sync::Mutex;").is_empty());
        // `Ordering` (cmp or atomic) and bare `Arc` sharing are fine.
        assert!(lint_source(
            "crates/core/src/machine.rs",
            "use std::sync::Arc;\nfn f(a: Ordering) -> Ordering { a }"
        )
        .is_empty());
        // Tests inside sim crates may synchronize however they like.
        assert!(lint_source(
            "crates/engine/src/sim.rs",
            "#[cfg(test)]\nmod tests { use std::sync::Mutex; }"
        )
        .is_empty());
    }

    #[test]
    fn wall_clock_scope_covers_workloads_and_analysis() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert!(lint_source("crates/workloads/src/apps.rs", src)
            .iter()
            .any(|f| f.rule == "wall-clock"));
        assert!(lint_source("crates/analysis/src/x.rs", src)
            .iter()
            .any(|f| f.rule == "wall-clock"));
        // bench and cli still measure real time by design.
        assert!(lint_source("crates/cli/src/lib.rs", src).is_empty());
    }

    #[test]
    fn float_transcendental_rule_fires_in_sim_crates() {
        let method = "fn f(x: f64) -> f64 { x.ln() + x.powf(2.5) }";
        for file in [
            "crates/engine/src/sim.rs",
            "crates/net/src/fabric.rs",
            "crates/core/src/machine.rs",
            "crates/workloads/src/apps/em3d.rs",
        ] {
            let f = lint_source(file, method);
            assert!(f.iter().any(|f| f.rule == "float-transcendental"), "{file}");
        }
        // Path form is caught too.
        assert!(lint_source(
            "crates/mem/src/cache.rs",
            "fn f(x: f64) -> f64 { f64::exp(x) }"
        )
        .iter()
        .any(|f| f.rule == "float-transcendental"));
        // The traffic module owns det_ln and its libm comparison tests.
        assert!(lint_source("crates/workloads/src/traffic.rs", method).is_empty());
        // IEEE-exact operations stay legal.
        assert!(lint_source(
            "crates/engine/src/sim.rs",
            "fn f(x: f64) -> f64 { x.sqrt() + x.abs() }"
        )
        .is_empty());
        // A field or variable that happens to share a name is not a call.
        assert!(lint_source(
            "crates/engine/src/sim.rs",
            "struct S { exp: u32, log: Vec<u32> }\nfn f(s: &S) -> u32 { s.exp }"
        )
        .is_empty());
        // Out of scope: analysis/cli/bench may use libm freely.
        assert!(lint_source("crates/analysis/src/x.rs", method).is_empty());
    }

    #[test]
    fn thread_spawn_rule_fires_outside_the_sanctioned_modules() {
        for src in [
            "fn f() { std::thread::spawn(|| {}); }",
            "fn f() { std::thread::scope(|s| { let _ = s; }); }",
            "fn f() { let b = std::thread::Builder::new(); let _ = b; }",
        ] {
            for file in [
                "crates/engine/src/sim.rs",
                "crates/workloads/src/traffic.rs",
                "crates/cli/src/lib.rs",
            ] {
                assert!(
                    lint_source(file, src)
                        .iter()
                        .any(|f| f.rule == "thread-spawn"),
                    "{file}: {src}"
                );
            }
        }
        // The epoch driver and the sweep harness own the threads.
        let src = "fn f() { std::thread::scope(|s| { let _ = s; }); }";
        assert!(lint_source("crates/core/src/epoch.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/harness.rs", src).is_empty());
        // A variable named `thread` is not a spawn.
        assert!(lint_source(
            "crates/engine/src/sim.rs",
            "fn f(thread: u32) -> u32 { thread }"
        )
        .is_empty());
        // Tests may spawn helper threads.
        assert!(lint_source(
            "crates/engine/src/sim.rs",
            "#[cfg(test)]\nmod tests { fn t() { std::thread::spawn(|| {}); } }"
        )
        .is_empty());
    }

    #[test]
    fn arc_mutex_rule_confines_shared_sinks() {
        let src = "use std::sync::{Arc, Mutex};\nstruct S { sink: Arc<Mutex<Vec<u32>>> }";
        for file in [
            "crates/workloads/src/apps/moldyn.rs",
            "crates/bench/src/sweep.rs",
        ] {
            assert!(
                lint_source(file, src).iter().any(|f| f.rule == "arc-mutex"),
                "{file}"
            );
        }
        assert!(lint_source(
            "crates/workloads/src/x.rs",
            "fn f(l: Arc<RwLock<u32>>) { let _ = l; }"
        )
        .iter()
        .any(|f| f.rule == "arc-mutex"));
        // The three sanctioned sinks are exempt.
        for file in [
            "crates/workloads/src/traffic.rs",
            "crates/workloads/src/micro/pingpong.rs",
            "crates/workloads/src/micro/bandwidth.rs",
        ] {
            assert!(lint_source(file, src).is_empty(), "{file}");
        }
        // Arc alone (immutable sharing) is fine.
        assert!(lint_source(
            "crates/workloads/src/x.rs",
            "fn f(t: Arc<Vec<u32>>) { let _ = t; }"
        )
        .is_empty());
        // Sim-state crates are sync-primitives territory, not arc-mutex.
        let f = lint_source("crates/core/src/machine.rs", src);
        assert!(f.iter().all(|f| f.rule != "arc-mutex"));
        assert!(f.iter().any(|f| f.rule == "sync-primitives"));
    }

    #[test]
    fn render_allowlist_round_trips_through_the_parser() {
        let findings = vec![
            Finding {
                file: "crates/core/src/machine.rs".into(),
                line: 400,
                rule: "panic-path",
                message: String::new(),
            },
            Finding {
                file: "crates/core/src/machine.rs".into(),
                line: 12,
                rule: "panic-path",
                message: String::new(),
            },
        ];
        let text = render_allowlist(&findings);
        let allow = parse_allowlist(&text);
        assert_eq!(allow.len(), 2);
        assert!(allow.contains("crates/core/src/machine.rs:400:panic-path"));
        // Sorted: the line-12 entry renders before line 400 textually.
        let body: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(body.len(), 2);
        assert!(render_allowlist(&[]).lines().all(|l| l.starts_with('#')));
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "
            fn live() {}
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() { let x: Option<u32> = None; x.unwrap(); }
            }
        ";
        assert!(lint_source("crates/engine/src/sim.rs", src).is_empty());
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allowlist_parses_and_round_trips() {
        let text = "
            # suppressions are exact file:line:rule keys
            crates/core/src/machine.rs:336:panic-path  # trace forced on above
\t
        ";
        let allow = parse_allowlist(text);
        assert_eq!(allow.len(), 1);
        assert!(allow.contains("crates/core/src/machine.rs:336:panic-path"));
        let f = Finding {
            file: "crates/core/src/machine.rs".into(),
            line: 336,
            rule: "panic-path",
            message: String::new(),
        };
        assert_eq!(f.key(), "crates/core/src/machine.rs:336:panic-path");
        assert!(allow.contains(&f.key()));
    }

    #[test]
    fn stale_allowlist_entries_are_reported() {
        // Lint an empty temp tree with a non-empty allowlist: every
        // entry is stale and must be surfaced.
        let allow = parse_allowlist("crates/engine/src/nonexistent.rs:1:panic-path");
        let dir = std::env::temp_dir().join("nisim-analysis-stale-test");
        let _ = std::fs::create_dir_all(dir.join("crates"));
        let out = lint_tree(&dir, &allow);
        assert!(!out.is_clean());
        assert_eq!(
            out.stale_allows,
            vec!["crates/engine/src/nonexistent.rs:1:panic-path".to_string()]
        );
    }
}
