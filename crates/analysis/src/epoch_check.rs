//! Bounded model checking of the epoch-merge algorithm.
//!
//! The conservative epoch driver (`nisim-core`'s `epoch` module) rests
//! on three claims:
//!
//! 1. **Exact merge** — partitioning a window's events by node into
//!    lanes, running the lanes independently, and replaying the op logs
//!    through a `(time, seq, lane)` heap reconstructs the unique serial
//!    `(time, seq)` firing order, with replay-time seq allocation
//!    reproducing the wheel's own numbering.
//! 2. **Lookahead safety** — no event fired inside a window `[T, T+L)`
//!    can schedule onto a *remote* node before `T + L`, because the
//!    wire latency is `L`. Anything else would let lanes race.
//! 3. **Snapshot bisimulation** — cutting a run mid-stream and resuming
//!    with the epoch machinery reaches the same final state as the
//!    uninterrupted run (the checkpoint/restore chaos suite's
//!    foundation).
//!
//! This module checks all three on a small abstract model of the
//! algorithm itself: 2–3 nodes, 1–2 seed events per lane, seed times at
//! the window start, one tick before the lookahead edge, and exactly at
//! the edge, with behaviors that bump node state, schedule same-instant
//! children (seq ties), schedule at the edge, or schedule onto the next
//! node a full wire latency away. Every combination of seed offset and
//! behavior is enumerated exhaustively; for each configuration the
//! serial reference order, the epoch-merge order (under both lane
//! execution orders), per-window footprint disjointness, and every
//! mid-run cut are verified. A 39 ns latency mutant
//! ([`EpochChecker::with_lookahead_mutant`]) and an
//! overlapping-footprint mutant ([`EpochChecker::with_footprint_mutant`])
//! prove the checker actually detects violations (`selftest`).
//!
//! The merge orders the abstract model visits are exported as a
//! transition alphabet over [`nisim_engine::audit::MergeStep`] pairs;
//! the `epoch_audit_props` integration test checks a *real* 2-node run
//! only exercises merge situations the abstract model has covered.

use std::collections::BTreeSet;

use nisim_engine::audit::{merge_transitions, FootprintKey, MergeStep};

/// The engine's belief in the lookahead: epoch windows are
/// `[T, T + 40)`, the paper's constant wire latency.
const WINDOW: u64 = 40;

/// Cap on collected violation strings (the mutants fail thousands of
/// configurations; the count is tracked exactly, the examples bounded).
const MAX_VIOLATIONS: usize = 200;

/// What a seed event does when it fires (children always `Bump`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Behavior {
    /// Touch own node state only.
    Bump,
    /// Schedule a child at the same instant on the same node — forces a
    /// same-instant `(time, seq)` tie inside one lane.
    SchedSame,
    /// Schedule a child 39 ns out on the same node — lands in-window
    /// from the window start, escapes from anywhere later.
    SchedEdge,
    /// Schedule a child on the next node a full wire latency out — the
    /// only legal cross-node schedule. Under the 39 ns mutant the
    /// latency undershoots the window and must be flagged.
    SchedRemote,
}

const BEHAVIORS: [Behavior; 4] = [
    Behavior::Bump,
    Behavior::SchedSame,
    Behavior::SchedEdge,
    Behavior::SchedRemote,
];

/// Seed times relative to the run start: window start, one tick before
/// the lookahead edge, exactly at the edge (the next window's start).
const OFFSETS: [u64; 3] = [0, 39, 40];

/// One pending event of the abstract model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Pending {
    at: u64,
    seq: u64,
    node: usize,
    behavior: Behavior,
}

/// One fired event, the unit both executors are compared on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Fire {
    at: u64,
    seq: u64,
    node: usize,
}

/// Abstract machine state: one order-sensitive accumulator per node
/// (`h = h * 1000003 + at + 1`), so firing a node's events out of order
/// changes the value even though every event "just bumps".
#[derive(Clone, Debug, PartialEq, Eq)]
struct State {
    nodes: Vec<u64>,
    pending: Vec<Pending>,
    next_seq: u64,
}

impl State {
    fn initial(nodes: usize, seeds: &[(usize, u64, Behavior)]) -> State {
        let mut s = State {
            nodes: vec![0; nodes],
            pending: Vec::new(),
            next_seq: 0,
        };
        for &(node, at, behavior) in seeds {
            let seq = s.next_seq;
            s.next_seq += 1;
            s.pending.push(Pending {
                at,
                seq,
                node,
                behavior,
            });
        }
        s
    }

    fn touch(&mut self, node: usize, at: u64) {
        self.nodes[node] = self.nodes[node]
            .wrapping_mul(1_000_003)
            .wrapping_add(at + 1);
    }

    /// The child an event's behavior schedules, if any.
    fn child(
        behavior: Behavior,
        at: u64,
        node: usize,
        nodes: usize,
        latency: u64,
    ) -> Option<(u64, usize)> {
        match behavior {
            Behavior::Bump => None,
            Behavior::SchedSame => Some((at, node)),
            Behavior::SchedEdge => Some((at + 39, node)),
            Behavior::SchedRemote => Some((at + latency, (node + 1) % nodes)),
        }
    }

    /// Pops the strict `(at, seq)` minimum.
    fn pop_min(&mut self) -> Option<Pending> {
        let i = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| (p.at, p.seq))
            .map(|(i, _)| i)?;
        Some(self.pending.swap_remove(i))
    }
}

/// Runs the serial reference executor for up to `budget` events,
/// recording the firing order. `u64::MAX` runs to quiescence.
fn run_serial(state: &mut State, latency: u64, budget: u64, order: &mut Vec<Fire>) {
    let nodes = state.nodes.len();
    let mut fired = 0u64;
    while fired < budget {
        let Some(p) = state.pop_min() else {
            return;
        };
        fired += 1;
        state.touch(p.node, p.at);
        order.push(Fire {
            at: p.at,
            seq: p.seq,
            node: p.node,
        });
        if let Some((at, node)) = State::child(p.behavior, p.at, p.node, nodes, latency) {
            let seq = state.next_seq;
            state.next_seq += 1;
            state.pending.push(Pending {
                at,
                seq,
                node,
                behavior: Behavior::Bump,
            });
        }
    }
}

/// One lane's recorded effect, mirroring the driver's `Op::Local` /
/// `Op::Sched` split.
#[derive(Clone, Copy, Debug)]
enum LaneOp {
    /// An in-window same-node schedule; the event lives in the lane's
    /// heap, the replay allocates its seq.
    Local { at: u64 },
    /// An escaping schedule (later window, any node).
    Sched { at: u64, node: usize },
}

/// One lane's log after running its window slice.
struct LaneLog {
    node: usize,
    /// `(at, ops_end)` per fired event, in lane firing order.
    fired: Vec<(u64, usize)>,
    ops: Vec<LaneOp>,
    writes: Vec<FootprintKey>,
}

/// Everything one epoch-merge execution produced.
pub(crate) struct EpochRunOutcome {
    order: Vec<Fire>,
    transitions: BTreeSet<u8>,
    violations: Vec<String>,
    epochs: u64,
}

/// Runs the epoch-merge executor to quiescence, mirroring the real
/// driver: window partition, lane execution (in forward or reversed
/// lane order), exact `(time, seq, lane)` replay with replay-time seq
/// allocation.
fn run_epochs(
    state: &mut State,
    latency: u64,
    reverse_lanes: bool,
    footprint_mutant: bool,
) -> EpochRunOutcome {
    let nodes_len = state.nodes.len();
    let mut out = EpochRunOutcome {
        order: Vec::new(),
        transitions: BTreeSet::new(),
        violations: Vec::new(),
        epochs: 0,
    };
    loop {
        let Some(t_next) = state.pending.iter().map(|p| p.at).min() else {
            return out;
        };
        let window_end = t_next + WINDOW;
        out.epochs += 1;

        // Window partition: pop every in-window event, in (at, seq)
        // order, and split by node into lanes (ascending node order,
        // like the driver builds them).
        let mut seeds: Vec<Pending> = Vec::new();
        let mut rest = Vec::new();
        for p in state.pending.drain(..) {
            if p.at < window_end {
                seeds.push(p);
            } else {
                rest.push(p);
            }
        }
        state.pending = rest;
        seeds.sort_by_key(|p| (p.at, p.seq));
        let mut lanes: Vec<(usize, Vec<Pending>)> = Vec::new();
        for nid in 0..nodes_len {
            let lane: Vec<Pending> = seeds.iter().filter(|p| p.node == nid).copied().collect();
            if !lane.is_empty() {
                lanes.push((nid, lane));
            }
        }

        // The replay heap starts from the seed keys, exactly like the
        // driver; `lane_slot` indexes `lanes`.
        let mut heap: BTreeSet<(u64, u64, usize)> = BTreeSet::new();
        for (slot, (_, lane)) in lanes.iter().enumerate() {
            for p in lane {
                heap.insert((p.at, p.seq, slot));
            }
        }

        // Lane phase: each lane fires its slice against its own node
        // state, recording global effects as ops. Execution order over
        // lanes must not matter (disjoint footprints); the checker runs
        // both orders and compares.
        let mut logs: Vec<Option<LaneLog>> = (0..lanes.len()).map(|_| None).collect();
        let lane_order: Vec<usize> = if reverse_lanes {
            (0..lanes.len()).rev().collect()
        } else {
            (0..lanes.len()).collect()
        };
        for slot in lane_order {
            let (nid, lane_seeds) = &lanes[slot];
            let nid = *nid;
            let mut log = LaneLog {
                node: nid,
                fired: Vec::new(),
                ops: Vec::new(),
                writes: vec![FootprintKey::node(nid as u64)],
            };
            if footprint_mutant {
                // The seeded bug: every lane also writes one shared
                // cell — the disjointness check must catch it.
                log.writes.push(FootprintKey::transfer(777));
            }
            // Lane heap keyed (at, gen, idx): seeds gen 0 with their
            // wheel seq, creations gen 1 with an insertion counter.
            let mut lheap: BTreeSet<(u64, u8, u64, usize)> = BTreeSet::new();
            let mut created = 0u64;
            for p in lane_seeds {
                lheap.insert((p.at, 0, p.seq, behavior_code(p.behavior)));
            }
            while let Some(&(at, gen, idx, bcode)) = lheap.iter().next() {
                lheap.remove(&(at, gen, idx, bcode));
                let behavior = behavior_from_code(bcode);
                state.touch(nid, at);
                if let Some((cat, cnode)) = State::child(behavior, at, nid, nodes_len, latency) {
                    if cat >= window_end {
                        log.ops.push(LaneOp::Sched {
                            at: cat,
                            node: cnode,
                        });
                    } else if cnode != nid {
                        // The conservative-lookahead invariant the real
                        // driver asserts: an in-window schedule must
                        // stay on the lane's own node.
                        out.violations.push(format!(
                            "lookahead violated: node {nid} scheduled node {cnode} at \
                             {cat} inside window [{t_next}, {window_end})"
                        ));
                        // Treat as escaping so the run still terminates.
                        log.ops.push(LaneOp::Sched {
                            at: cat,
                            node: cnode,
                        });
                    } else {
                        log.ops.push(LaneOp::Local { at: cat });
                        lheap.insert((cat, 1, created, behavior_code(Behavior::Bump)));
                        created += 1;
                    }
                }
                log.fired.push((at, log.ops.len()));
            }
            logs[slot] = Some(log);
        }
        let logs: Vec<LaneLog> = logs.into_iter().map(|l| l.expect("lane ran")).collect();

        // Footprint disjointness: cross-lane write sets must not
        // intersect (every key here is a write; reads would join the
        // check the same way).
        for i in 0..logs.len() {
            for j in i + 1..logs.len() {
                for k in &logs[i].writes {
                    if logs[j].writes.contains(k) {
                        out.violations.push(format!(
                            "cross-lane footprint overlap in window [{t_next}, {window_end}): \
                             lanes {} and {} both touch {k}",
                            logs[i].node, logs[j].node
                        ));
                    }
                }
            }
        }

        // Exact replay: (time, seq, lane) heap, replay-time seq
        // allocation for lane creations, escaping schedules into the
        // global pending set.
        let replay_base = state.next_seq;
        let mut cursors = vec![(0usize, 0usize); logs.len()];
        let mut merge: Vec<MergeStep> = Vec::new();
        while let Some(&(at, seq, slot)) = heap.iter().next() {
            heap.remove(&(at, seq, slot));
            merge.push(MergeStep {
                at_ns: at,
                lane: logs[slot].node as u32,
                seed: seq < replay_base,
            });
            out.order.push(Fire {
                at,
                seq,
                node: logs[slot].node,
            });
            let (fi, oi) = cursors[slot];
            let (rec_at, ops_end) = logs[slot].fired[fi];
            if rec_at != at {
                out.violations.push(format!(
                    "lane replay out of step: lane {} fired at {rec_at}, replay expected {at}",
                    logs[slot].node
                ));
            }
            cursors[slot] = (fi + 1, ops_end);
            for op in &logs[slot].ops[oi..ops_end] {
                match *op {
                    LaneOp::Local { at } => {
                        let seq = state.next_seq;
                        state.next_seq += 1;
                        heap.insert((at, seq, slot));
                    }
                    LaneOp::Sched { at, node } => {
                        let seq = state.next_seq;
                        state.next_seq += 1;
                        state.pending.push(Pending {
                            at,
                            seq,
                            node,
                            behavior: Behavior::Bump,
                        });
                    }
                }
            }
        }
        for (c, log) in cursors.iter().zip(&logs) {
            if c.0 != log.fired.len() {
                out.violations
                    .push("replay did not consume every lane event".to_string());
            }
        }
        out.transitions.extend(merge_transitions(&merge));
    }
}

fn behavior_code(b: Behavior) -> usize {
    match b {
        Behavior::Bump => 0,
        Behavior::SchedSame => 1,
        Behavior::SchedEdge => 2,
        Behavior::SchedRemote => 3,
    }
}

fn behavior_from_code(code: usize) -> Behavior {
    BEHAVIORS[code]
}

/// What one full check explored.
#[derive(Clone, Debug)]
pub struct EpochCheckOutcome {
    /// Seed configurations exhaustively enumerated.
    pub configs: u64,
    /// Events fired across all serial reference runs.
    pub events: u64,
    /// Mid-run cuts verified for snapshot bisimulation.
    pub cuts: u64,
    /// Total violations found (zero on the real algorithm).
    pub violation_count: u64,
    /// The first `MAX_VIOLATIONS` violation descriptions.
    pub violations: Vec<String>,
    /// The merge-transition alphabet the model visited (see
    /// [`nisim_engine::audit::merge_transitions`]).
    pub transitions: BTreeSet<u8>,
}

impl EpochCheckOutcome {
    fn violation(&mut self, v: String) {
        self.violation_count += 1;
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        }
    }

    fn absorb(&mut self, run: EpochRunOutcome) {
        self.transitions.extend(run.transitions);
        for v in run.violations {
            self.violation(v);
        }
    }
}

/// The bounded epoch-merge model checker.
pub struct EpochChecker {
    /// The modelled wire latency (what `SchedRemote` trusts). 40 in the
    /// real algorithm; 39 under the seeded lookahead mutant.
    latency: u64,
    /// Seeded bug: lanes share a footprint cell.
    footprint_mutant: bool,
}

impl Default for EpochChecker {
    fn default() -> Self {
        EpochChecker::new()
    }
}

impl EpochChecker {
    /// The real algorithm: latency equals the window, footprints
    /// disjoint.
    pub fn new() -> EpochChecker {
        EpochChecker {
            latency: WINDOW,
            footprint_mutant: false,
        }
    }

    /// Seeded mutant: the wire undershoots the engine's lookahead by
    /// one tick (39 ns), so a remote schedule from a window's start
    /// lands *inside* the window — the checker must flag it.
    pub fn with_lookahead_mutant() -> EpochChecker {
        EpochChecker {
            latency: WINDOW - 1,
            footprint_mutant: false,
        }
    }

    /// Seeded mutant: every lane writes one shared footprint cell — the
    /// disjointness check must flag it.
    pub fn with_footprint_mutant() -> EpochChecker {
        EpochChecker {
            latency: WINDOW,
            footprint_mutant: true,
        }
    }

    /// Exhaustively checks every seed configuration of the two scenario
    /// families (2 nodes × 2 events/lane, 3 nodes × 1 event/lane).
    pub fn check(&self) -> EpochCheckOutcome {
        let mut out = EpochCheckOutcome {
            configs: 0,
            events: 0,
            cuts: 0,
            violation_count: 0,
            violations: Vec::new(),
            transitions: BTreeSet::new(),
        };
        // 2 nodes, 2 seeds per lane: every (offset, behavior) choice
        // for each of the 4 seeds.
        let choices: Vec<(u64, Behavior)> = OFFSETS
            .iter()
            .flat_map(|&o| BEHAVIORS.iter().map(move |&b| (o, b)))
            .collect();
        for &a in &choices {
            for &b in &choices {
                for &c in &choices {
                    for &d in &choices {
                        let seeds = [
                            (0usize, a.0, a.1),
                            (0, b.0, b.1),
                            (1, c.0, c.1),
                            (1, d.0, d.1),
                        ];
                        self.check_config(2, &seeds, &mut out);
                    }
                }
            }
        }
        // 3 nodes, 1 seed per lane: remote schedules chain around the
        // ring.
        for &a in &choices {
            for &b in &choices {
                for &c in &choices {
                    let seeds = [(0usize, a.0, a.1), (1, b.0, b.1), (2, c.0, c.1)];
                    self.check_config(3, &seeds, &mut out);
                }
            }
        }
        out
    }

    /// Checks one seed configuration: serial reference vs epoch merge
    /// (both lane orders) vs every mid-run cut.
    fn check_config(
        &self,
        nodes: usize,
        seeds: &[(usize, u64, Behavior)],
        out: &mut EpochCheckOutcome,
    ) {
        out.configs += 1;
        let label = || {
            let s: Vec<String> = seeds
                .iter()
                .map(|(n, o, b)| format!("n{n}@{o}:{b:?}"))
                .collect();
            format!("[{}]", s.join(" "))
        };

        // Serial reference.
        let mut serial = State::initial(nodes, seeds);
        let mut serial_order = Vec::new();
        run_serial(&mut serial, self.latency, u64::MAX, &mut serial_order);
        out.events += serial_order.len() as u64;

        // Epoch merge, both lane execution orders.
        for reverse in [false, true] {
            let mut st = State::initial(nodes, seeds);
            let run = run_epochs(&mut st, self.latency, reverse, self.footprint_mutant);
            if run.order != serial_order {
                out.violation(format!(
                    "merge order diverged from serial (reverse_lanes={reverse}) for {}",
                    label()
                ));
            }
            if st.nodes != serial.nodes || st.next_seq != serial.next_seq {
                out.violation(format!(
                    "final state diverged from serial (reverse_lanes={reverse}) for {}",
                    label()
                ));
            }
            out.absorb(run);
        }

        // Snapshot bisimulation: cut the serial run after k events,
        // resume with the epoch machinery, compare against the
        // uninterrupted serial end state.
        for k in 0..serial_order.len() as u64 {
            out.cuts += 1;
            let mut st = State::initial(nodes, seeds);
            let mut prefix = Vec::new();
            run_serial(&mut st, self.latency, k, &mut prefix);
            let resumed = run_epochs(&mut st, self.latency, false, self.footprint_mutant);
            let mut full: Vec<Fire> = prefix;
            full.extend(resumed.order.iter().copied());
            if full != serial_order || st.nodes != serial.nodes {
                out.violation(format!(
                    "snapshot cut after {k} events failed to commute with the merge for {}",
                    label()
                ));
            }
            out.absorb(resumed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Spot check: the exhaustive pass holds on a trimmed scenario (the
    /// full sweep runs in `nisim-analysis epoch-check`; this keeps
    /// `cargo test` fast in debug builds).
    #[test]
    fn sample_configs_merge_exactly() {
        let checker = EpochChecker::new();
        let mut out = EpochCheckOutcome {
            configs: 0,
            events: 0,
            cuts: 0,
            violation_count: 0,
            violations: Vec::new(),
            transitions: BTreeSet::new(),
        };
        for &o in &OFFSETS {
            for &b in &BEHAVIORS {
                let seeds = [
                    (0usize, 0, Behavior::SchedSame),
                    (0, o, b),
                    (1, 0, Behavior::SchedRemote),
                    (1, o, b),
                ];
                checker.check_config(2, &seeds, &mut out);
            }
        }
        assert_eq!(out.violation_count, 0, "{:?}", out.violations);
        assert!(out.configs == 12 && out.events > 0 && out.cuts > 0);
        // Same-instant ties and cross-lane interleavings both arose.
        assert!(out.transitions.len() >= 3);
    }

    #[test]
    fn lookahead_mutant_is_caught() {
        let checker = EpochChecker::with_lookahead_mutant();
        let mut out = EpochCheckOutcome {
            configs: 0,
            events: 0,
            cuts: 0,
            violation_count: 0,
            violations: Vec::new(),
            transitions: BTreeSet::new(),
        };
        // A remote schedule from the window start undershoots the edge.
        let seeds = [(0usize, 0, Behavior::SchedRemote), (1, 0, Behavior::Bump)];
        checker.check_config(2, &seeds, &mut out);
        assert!(out.violation_count > 0);
        assert!(out.violations.iter().any(|v| v.contains("lookahead")));
    }

    #[test]
    fn footprint_mutant_is_caught() {
        let checker = EpochChecker::with_footprint_mutant();
        let mut out = EpochCheckOutcome {
            configs: 0,
            events: 0,
            cuts: 0,
            violation_count: 0,
            violations: Vec::new(),
            transitions: BTreeSet::new(),
        };
        let seeds = [(0usize, 0, Behavior::Bump), (1, 0, Behavior::Bump)];
        checker.check_config(2, &seeds, &mut out);
        assert!(out.violation_count > 0);
        assert!(out
            .violations
            .iter()
            .any(|v| v.contains("footprint overlap")));
    }

    #[test]
    fn serial_reference_orders_by_time_then_seq() {
        let mut st = State::initial(2, &[(1, 5, Behavior::Bump), (0, 5, Behavior::Bump)]);
        let mut order = Vec::new();
        run_serial(&mut st, WINDOW, u64::MAX, &mut order);
        // Same instant: the earlier-scheduled seed (lower seq) fires
        // first, regardless of node.
        assert_eq!(order[0].node, 1);
        assert_eq!(order[1].node, 0);
    }
}
