//! Replay-and-verify for real runs' footprint-audit logs.
//!
//! An audited run ([`nisim_core::Machine::run_audited`]) makes the
//! epoch driver record, per parallel epoch, each lane's read/write
//! footprint over shared state, every schedule it issued, its seed
//! events, and the exact merge order the coordinator replayed. This
//! module re-checks those logs after the fact — a deterministic race
//! detector for the PDES:
//!
//! * **window discipline** — every epoch's window is at most one
//!   lookahead wide, holds at least two lanes (sparser windows run
//!   serially), and each lane appears once;
//! * **footprint disjointness** — no shared-state key is touched by two
//!   lanes of one epoch with at least one of them writing;
//! * **lookahead rule** — every schedule landing inside the window
//!   targets the issuing lane's own node;
//! * **seed containment** — every seed's timestamp lies inside the
//!   window;
//! * **merge shape** — the merge ordering is nondecreasing in time,
//!   starts at the window start, and fires exactly the events the lanes
//!   report (every seed arrives as a seed step).
//!
//! [`audit_grid`] runs the full 12-NI × 3-app differential grid audited
//! and applies [`check_log`] to every run — the CI gate.

use std::collections::BTreeSet;

use nisim_core::{Machine, MachineConfig, NiKind};
use nisim_engine::audit::AuditLog;
use nisim_engine::SimStatus;
use nisim_net::BufferCount;
use nisim_workloads::apps::{factory, AppParams, MacroApp};

/// Verifies one run's audit log; returns one description per violation
/// (empty = the run is race-free under the footprint model).
pub fn check_log(label: &str, log: &AuditLog) -> Vec<String> {
    let mut v = Vec::new();
    for (ei, ep) in log.epochs.iter().enumerate() {
        let ctx = format!("{label}: epoch {ei} [{}, {})", ep.start_ns, ep.end_ns);
        if ep.end_ns <= ep.start_ns {
            v.push(format!("{ctx}: empty or inverted window"));
            continue;
        }
        if ep.end_ns - ep.start_ns > log.lookahead_ns {
            v.push(format!(
                "{ctx}: window wider than the {} ns lookahead",
                log.lookahead_ns
            ));
        }
        if ep.lanes.len() < 2 {
            v.push(format!(
                "{ctx}: {} lane(s); sub-2-lane windows must run serially",
                ep.lanes.len()
            ));
        }
        let mut nodes = BTreeSet::new();
        for lane in &ep.lanes {
            if !nodes.insert(lane.node) {
                v.push(format!("{ctx}: node {} appears in two lanes", lane.node));
            }
        }
        // Cross-lane footprint disjointness: a conflict is one key in
        // two lanes with at least one side writing.
        for i in 0..ep.lanes.len() {
            for j in i + 1..ep.lanes.len() {
                let (a, b) = (&ep.lanes[i], &ep.lanes[j]);
                for k in &a.writes {
                    if b.writes.binary_search(k).is_ok() || b.reads.binary_search(k).is_ok() {
                        v.push(format!(
                            "{ctx}: lanes {} and {} conflict on {k} (write)",
                            a.node, b.node
                        ));
                    }
                }
                for k in &a.reads {
                    if b.writes.binary_search(k).is_ok() {
                        v.push(format!(
                            "{ctx}: lanes {} and {} conflict on {k} (read vs write)",
                            a.node, b.node
                        ));
                    }
                }
            }
        }
        // The lookahead rule, re-verified from the log.
        for lane in &ep.lanes {
            for &(at, target) in &lane.scheds {
                if at < ep.end_ns && target != lane.node {
                    v.push(format!(
                        "{ctx}: lane {} scheduled node {target} at {at} inside the window",
                        lane.node
                    ));
                }
            }
            for &(at, _) in &lane.seeds {
                if at < ep.start_ns || at >= ep.end_ns {
                    v.push(format!(
                        "{ctx}: lane {} holds an out-of-window seed at {at}",
                        lane.node
                    ));
                }
            }
        }
        // Merge shape.
        let fired: u64 = ep.lanes.iter().map(|l| l.events).sum();
        if ep.merge.len() as u64 != fired {
            v.push(format!(
                "{ctx}: merge replayed {} events, lanes fired {fired}",
                ep.merge.len()
            ));
        }
        let seeds: u64 = ep.lanes.iter().map(|l| l.seeds.len() as u64).sum();
        let seed_steps = ep.merge.iter().filter(|s| s.seed).count() as u64;
        if seed_steps != seeds {
            v.push(format!(
                "{ctx}: merge saw {seed_steps} seed steps, lanes were handed {seeds} seeds"
            ));
        }
        if let Some(first) = ep.merge.first() {
            if first.at_ns != ep.start_ns {
                v.push(format!(
                    "{ctx}: merge starts at {}, window starts at {}",
                    first.at_ns, ep.start_ns
                ));
            }
        }
        for pair in ep.merge.windows(2) {
            if pair[1].at_ns < pair[0].at_ns {
                v.push(format!(
                    "{ctx}: merge time went backwards ({} after {})",
                    pair[1].at_ns, pair[0].at_ns
                ));
                break;
            }
        }
        for step in &ep.merge {
            if step.at_ns < ep.start_ns || step.at_ns >= ep.end_ns {
                v.push(format!(
                    "{ctx}: merge step at {} outside the window",
                    step.at_ns
                ));
                break;
            }
        }
    }
    v
}

/// Summary of one grid audit.
#[derive(Clone, Debug, Default)]
pub struct AuditOutcome {
    /// Grid points run.
    pub runs: u64,
    /// Parallel epochs audited across all runs.
    pub epochs: u64,
    /// Events fired inside parallel epochs.
    pub parallel_events: u64,
    /// Events fired by the serial fallback.
    pub serial_events: u64,
    /// Violations across all runs (empty = clean).
    pub violations: Vec<String>,
}

impl AuditOutcome {
    /// True when every run's log verified clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The twelve NI designs of the differential grid (Table 2 plus the
/// single-cycle and throttled variants and the three modern designs).
const NIS: [NiKind; 12] = [
    NiKind::Cm5,
    NiKind::Cm5SingleCycle,
    NiKind::Udma,
    NiKind::Ap3000,
    NiKind::StartJr,
    NiKind::MemoryChannel,
    NiKind::Cni512Q,
    NiKind::Cni32Qm,
    NiKind::Cni32QmThrottle,
    NiKind::RdmaQp,
    NiKind::Urma,
    NiKind::Sgdma,
];

const APPS: [MacroApp; 3] = [MacroApp::Em3d, MacroApp::Moldyn, MacroApp::Spsolve];

/// Runs the 12-NI × 3-app grid audited at the given worker count and
/// verifies every log. Small app parameters keep the grid fast; every
/// run still crosses hundreds of parallel epochs.
pub fn audit_grid(workers: u32) -> AuditOutcome {
    let mut out = AuditOutcome::default();
    let params = AppParams {
        iterations: 2,
        intensity: 2,
        compute: nisim_engine::Dur::us(2),
    };
    for ni in NIS {
        for app in APPS {
            let cfg = MachineConfig::with_ni(ni)
                .nodes(8)
                .flow_buffers(BufferCount::Finite(8))
                .workers(workers);
            let (report, log) = Machine::run_audited(cfg, factory(app, 8, 0x5eed, params));
            out.runs += 1;
            out.epochs += log.epochs.len() as u64;
            out.parallel_events += log.parallel_events;
            out.serial_events += log.serial_events;
            let label = format!("{app:?}/{ni:?}");
            if report.status != SimStatus::Drained {
                out.violations.push(format!(
                    "{label}: run ended {:?}, not Drained",
                    report.status
                ));
            }
            if log.epochs.is_empty() {
                out.violations
                    .push(format!("{label}: no parallel epochs — nothing was audited"));
            }
            out.violations.extend(check_log(&label, &log));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisim_engine::audit::{EpochAudit, FootprintKey, LaneAudit, MergeStep};

    fn clean_log() -> AuditLog {
        let mut lane0 = LaneAudit::new(0);
        lane0.events = 1;
        lane0.seeds = vec![(100, 1)];
        lane0.writes.push(FootprintKey::transfer(10));
        lane0.scheds.push((120, 0));
        lane0.seal();
        let mut lane1 = LaneAudit::new(1);
        lane1.events = 1;
        lane1.seeds = vec![(110, 2)];
        lane1.reads.push(FootprintKey::transfer(77));
        lane1.scheds.push((150, 0));
        lane1.seal();
        AuditLog {
            lookahead_ns: 40,
            serial_events: 0,
            parallel_events: 2,
            epochs: vec![EpochAudit {
                start_ns: 100,
                end_ns: 140,
                lanes: vec![lane0, lane1],
                merge: vec![
                    MergeStep {
                        at_ns: 100,
                        lane: 0,
                        seed: true,
                    },
                    MergeStep {
                        at_ns: 110,
                        lane: 1,
                        seed: true,
                    },
                ],
            }],
        }
    }

    #[test]
    fn clean_log_passes() {
        assert!(check_log("t", &clean_log()).is_empty());
    }

    #[test]
    fn cross_lane_write_is_flagged() {
        let mut log = clean_log();
        // Lane 1 writes the transfer lane 0 wrote: a race.
        log.epochs[0].lanes[1]
            .writes
            .push(FootprintKey::transfer(10));
        log.epochs[0].lanes[1].seal();
        let v = check_log("t", &log);
        assert!(v.iter().any(|s| s.contains("conflict on transfer:10")));
    }

    #[test]
    fn write_vs_read_is_flagged_in_either_order() {
        let mut log = clean_log();
        // Lane 0 reads what lane 1 reads is fine; writing it is not.
        log.epochs[0].lanes[0]
            .writes
            .push(FootprintKey::transfer(77));
        log.epochs[0].lanes[0].seal();
        let v = check_log("t", &log);
        assert!(v.iter().any(|s| s.contains("conflict on transfer:77")));
    }

    #[test]
    fn shared_reads_are_not_conflicts() {
        let mut log = clean_log();
        log.epochs[0].lanes[0]
            .reads
            .push(FootprintKey::transfer(77));
        log.epochs[0].lanes[0].seal();
        assert!(check_log("t", &log).is_empty());
    }

    #[test]
    fn in_window_remote_sched_is_flagged() {
        let mut log = clean_log();
        log.epochs[0].lanes[0].scheds.push((130, 1));
        let v = check_log("t", &log);
        assert!(v.iter().any(|s| s.contains("inside the window")));
    }

    #[test]
    fn wide_window_and_single_lane_are_flagged() {
        let mut log = clean_log();
        log.epochs[0].end_ns = 180;
        log.epochs[0].lanes.pop();
        let v = check_log("t", &log);
        assert!(v.iter().any(|s| s.contains("wider than")));
        assert!(v.iter().any(|s| s.contains("lane(s)")));
    }

    #[test]
    fn merge_event_count_mismatch_is_flagged() {
        let mut log = clean_log();
        log.epochs[0].merge.pop();
        let v = check_log("t", &log);
        assert!(v.iter().any(|s| s.contains("merge replayed")));
    }
}
