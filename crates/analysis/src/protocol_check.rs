//! Bounded exploration of the reliability (seq/ack/retransmit) layer
//! composed with the return-to-sender flow-control window.
//!
//! The model: one sender streams `fragments` sequenced fragments to one
//! receiver over an unordered network. An adversary may drop or
//! duplicate *data* copies within a budget; acks and returns ride the
//! guaranteed channel (as in the simulator, where only the data path is
//! fault-injected). The sender retransmits on (nondeterministic)
//! timeout up to the retry cap; the receiver either accepts into a free
//! flow-control buffer (deduplicating via the *real*
//! [`ReceiverDedup`]), re-acks duplicates, or returns the fragment to
//! the sender, which retries returned fragments without consuming the
//! retransmit budget — mirroring `nisim-core`'s machine.
//!
//! Checked over every interleaving:
//!
//! * **exactly-once delivery** — the receiver never accepts one
//!   fragment twice (the dedup window suppresses every duplicate) and
//!   never refuses a first delivery;
//! * **deadlock freedom** — whenever no protocol step is enabled, every
//!   fragment is acked (holds when the drop budget does not exceed the
//!   retry cap; a budget beyond the cap wedges the sender by design,
//!   which the simulator reports as a stall);
//! * **buffer conservation** — outstanding sends and held receive
//!   buffers never exceed the window, checked through the real
//!   [`BufferCount::has_free`] predicate;
//! * **backoff sanity** — [`ReliabilityConfig::timeout_for`] is
//!   monotone and saturates at its ceiling.

use std::collections::{BTreeSet, VecDeque};

use nisim_net::{BufferCount, NodeId, ReceiverDedup, ReliabilityConfig, SeqNo};

use crate::moesi_check::CheckOutcome;

/// In-flight copies of one fragment on one channel are capped at this
/// (original + one duplicate) to bound the state space.
const COPY_CAP: u8 = 2;

/// One bounded-exploration configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolConfig {
    /// Fragments the sender must deliver (1 or 2).
    pub fragments: usize,
    /// Flow-control buffers per direction.
    pub buffers: u32,
    /// Adversary budget: data copies that may be dropped.
    pub drop_budget: u8,
    /// Adversary budget: data copies that may be duplicated.
    pub dup_budget: u8,
    /// Retransmissions the sender may attempt per fragment.
    pub max_retries: u8,
}

impl ProtocolConfig {
    /// The configurations `check` explores: both window sizes the
    /// fragile end of the paper's sweep cares about, plus the
    /// single-fragment base case, all under a full fault budget.
    pub fn standard() -> Vec<ProtocolConfig> {
        vec![
            ProtocolConfig {
                fragments: 1,
                buffers: 1,
                drop_budget: 2,
                dup_budget: 2,
                max_retries: 2,
            },
            ProtocolConfig {
                fragments: 2,
                buffers: 1,
                drop_budget: 2,
                dup_budget: 2,
                max_retries: 2,
            },
            ProtocolConfig {
                fragments: 2,
                buffers: 2,
                drop_budget: 2,
                dup_budget: 2,
                max_retries: 2,
            },
        ]
    }
}

/// Sender-side status of one fragment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    NotSent,
    /// `attempt` = data transmissions so far (1 = original).
    Outstanding {
        attempt: u8,
    },
    Acked,
}

/// One fragment's slice of the system state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Frag {
    status: Status,
    /// Data copies in flight.
    data: u8,
    /// Ack copies in flight (guaranteed channel).
    acks: u8,
    /// Returned-to-sender copies in flight (guaranteed channel).
    returns: u8,
    /// The receiver has accepted this fragment (dedup window saw it).
    accepted: bool,
    /// The accepted copy still occupies a receive buffer (not drained).
    held: bool,
}

impl Frag {
    const INIT: Frag = Frag {
        status: Status::NotSent,
        data: 0,
        acks: 0,
        returns: 0,
        accepted: false,
        held: false,
    };
}

/// Full system state.
#[derive(Clone, Debug, PartialEq, Eq)]
struct ProtoState {
    frags: Vec<Frag>,
    drops_used: u8,
    dups_used: u8,
}

impl ProtoState {
    fn initial(cfg: &ProtocolConfig) -> ProtoState {
        ProtoState {
            frags: vec![Frag::INIT; cfg.fragments],
            drops_used: 0,
            dups_used: 0,
        }
    }

    /// Mixed-radix encoding; radices must cover every field's range.
    fn encode(&self, cfg: &ProtocolConfig) -> u64 {
        let status_radix = (cfg.max_retries as u64 + 1) + 2; // NotSent, attempts 1..=R+1, Acked
        let copy_radix = COPY_CAP as u64 + 1;
        let mut code = 0u64;
        for f in self.frags.iter().rev() {
            let status = match f.status {
                Status::NotSent => 0,
                Status::Outstanding { attempt } => attempt as u64,
                Status::Acked => status_radix - 1,
            };
            code = code * status_radix + status;
            code = code * copy_radix + f.data as u64;
            code = code * copy_radix + f.acks as u64;
            code = code * copy_radix + f.returns as u64;
            code = code * 2 + u64::from(f.accepted);
            code = code * 2 + u64::from(f.held);
        }
        code = code * (cfg.drop_budget as u64 + 1) + self.drops_used as u64;
        code * (cfg.dup_budget as u64 + 1) + self.dups_used as u64
    }

    fn outstanding(&self) -> u32 {
        self.frags
            .iter()
            .filter(|f| matches!(f.status, Status::Outstanding { .. }))
            .count() as u32
    }

    fn held(&self) -> u32 {
        self.frags.iter().filter(|f| f.held).count() as u32
    }

    /// Rebuilds the real receiver-side dedup window from the accepted
    /// set. The window's state is a pure function of which sequence
    /// numbers were accepted (order-independent — asserted by a test),
    /// so the encoded bitmask loses nothing.
    fn dedup(&self) -> ReceiverDedup {
        let mut d = ReceiverDedup::default();
        for (i, f) in self.frags.iter().enumerate() {
            if f.accepted {
                assert!(d.accept(SRC, SeqNo(i as u64)), "rebuild accepts in order");
            }
        }
        d
    }
}

impl std::fmt::Display for ProtoState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, fr) in self.frags.iter().enumerate() {
            let st = match fr.status {
                Status::NotSent => "-".to_string(),
                Status::Outstanding { attempt } => format!("out{attempt}"),
                Status::Acked => "ack".to_string(),
            };
            write!(
                f,
                "[#{i} {st} d{} a{} r{}{}{}]",
                fr.data,
                fr.acks,
                fr.returns,
                if fr.accepted { " acc" } else { "" },
                if fr.held { " held" } else { "" },
            )?;
        }
        write!(f, " drops {} dups {}", self.drops_used, self.dups_used)
    }
}

/// The single modeled source node.
const SRC: NodeId = NodeId(0);

/// Explores one configuration exhaustively; merges per-state violations.
pub fn explore(cfg: &ProtocolConfig) -> CheckOutcome {
    assert!(
        (1..=2).contains(&cfg.fragments),
        "bounded search covers 1-2 fragments"
    );
    let window = BufferCount::Finite(cfg.buffers);
    let mut out = CheckOutcome::default();
    let mut violations: BTreeSet<String> = BTreeSet::new();
    let initial = ProtoState::initial(cfg);
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut queue = VecDeque::new();
    seen.insert(initial.encode(cfg));
    queue.push_back(initial);
    while let Some(st) = queue.pop_front() {
        // Buffer conservation through the real window predicate: a
        // state where the window reports no room left must never hold
        // more than the cap.
        if st.outstanding() > cfg.buffers {
            violations.insert(format!("{cfg:?}: {st}: send window overrun"));
        }
        if st.held() > cfg.buffers {
            violations.insert(format!("{cfg:?}: {st}: receive window overrun"));
        }
        for f in &st.frags {
            if f.status == Status::NotSent && (f.data + f.acks + f.returns > 0 || f.accepted) {
                violations.insert(format!("{cfg:?}: {st}: traffic for an unsent fragment"));
            }
            if f.held && !f.accepted {
                violations.insert(format!("{cfg:?}: {st}: buffer held without acceptance"));
            }
        }
        let (succs, progress_possible) = successors(&st, cfg, window, &mut violations);
        if !progress_possible {
            // No protocol step is enabled (faults don't count: the
            // adversary can always decline to act). Every fragment must
            // have completed the handshake.
            for (i, f) in st.frags.iter().enumerate() {
                if f.status != Status::Acked {
                    violations.insert(format!("{cfg:?}: {st}: deadlock — fragment {i} unacked"));
                }
                if f.status == Status::Acked && !f.accepted {
                    violations.insert(format!(
                        "{cfg:?}: {st}: fragment {i} acked but never accepted"
                    ));
                }
            }
        }
        out.transitions += succs.len();
        for next in succs {
            let code = next.encode(cfg);
            if seen.insert(code) {
                queue.push_back(next);
            }
        }
    }
    out.states = seen.len();
    out.violations.extend(violations);
    out
}

/// All successors of `st`; the second return is true when any
/// *protocol* (non-fault) transition was enabled.
fn successors(
    st: &ProtoState,
    cfg: &ProtocolConfig,
    window: BufferCount,
    violations: &mut BTreeSet<String>,
) -> (Vec<ProtoState>, bool) {
    let mut succs = Vec::new();
    let mut progress = false;
    for i in 0..st.frags.len() {
        let f = st.frags[i];
        // Send: first transmission, gated on the send window.
        if f.status == Status::NotSent && window.has_free(st.outstanding()) {
            progress = true;
            let mut next = st.clone();
            next.frags[i].status = Status::Outstanding { attempt: 1 };
            next.frags[i].data += 1;
            succs.push(next);
        }
        // Retransmit on ack timeout, up to the retry cap.
        if let Status::Outstanding { attempt } = f.status {
            if attempt <= cfg.max_retries && f.data < COPY_CAP {
                progress = true;
                let mut next = st.clone();
                next.frags[i].status = Status::Outstanding {
                    attempt: attempt + 1,
                };
                next.frags[i].data += 1;
                succs.push(next);
            }
        }
        // A data copy arrives at the receiver.
        if f.data > 0 {
            let dedup = st.dedup();
            let seq = SeqNo(i as u64);
            if dedup.already_seen(SRC, seq) {
                // Duplicate: suppressed, but re-acked so a lost… no —
                // acks are never lost here; the re-ack mirrors the
                // simulator, which acks duplicates unconditionally.
                if !f.accepted {
                    violations.insert(format!(
                        "{cfg:?}: {st}: dedup claims to have seen fragment {i} before acceptance"
                    ));
                }
                if f.acks < COPY_CAP {
                    progress = true;
                    let mut next = st.clone();
                    next.frags[i].data -= 1;
                    next.frags[i].acks += 1;
                    succs.push(next);
                }
            } else if window.has_free(st.held()) {
                // First delivery into a free buffer: must be accepted
                // exactly once.
                if f.accepted {
                    violations.insert(format!(
                        "{cfg:?}: {st}: fragment {i} would be delivered twice"
                    ));
                }
                let mut fresh = dedup.clone();
                if !fresh.accept(SRC, seq) {
                    violations.insert(format!(
                        "{cfg:?}: {st}: dedup refused the first delivery of fragment {i}"
                    ));
                }
                if f.acks < COPY_CAP {
                    progress = true;
                    let mut next = st.clone();
                    next.frags[i].data -= 1;
                    next.frags[i].accepted = true;
                    next.frags[i].held = true;
                    next.frags[i].acks += 1;
                    succs.push(next);
                }
            } else if f.returns < COPY_CAP {
                // No free buffer: returned to the sender.
                progress = true;
                let mut next = st.clone();
                next.frags[i].data -= 1;
                next.frags[i].returns += 1;
                succs.push(next);
            }
        }
        // An ack arrives at the sender, releasing the send buffer. A
        // duplicate ack for an already-acked fragment is absorbed.
        if f.acks > 0 {
            progress = true;
            let mut next = st.clone();
            next.frags[i].acks -= 1;
            if matches!(f.status, Status::Outstanding { .. }) {
                next.frags[i].status = Status::Acked;
            }
            succs.push(next);
        }
        // A returned copy is absorbed and retried later; flow-control
        // retries do not consume the retransmit budget (the machine
        // re-sends from the still-allocated buffer with backoff). A
        // return racing a completed ack is discarded.
        if f.returns > 0 {
            let mut next = st.clone();
            next.frags[i].returns -= 1;
            match f.status {
                Status::Outstanding { .. } if f.data < COPY_CAP => {
                    progress = true;
                    next.frags[i].data += 1;
                    succs.push(next);
                }
                Status::Acked => {
                    progress = true;
                    succs.push(next);
                }
                Status::NotSent => {
                    violations.insert(format!(
                        "{cfg:?}: {st}: return for a fragment that was never sent"
                    ));
                }
                Status::Outstanding { .. } => {} // copy cap; other moves drain first
            }
        }
        // The processor drains the accepted fragment, freeing its
        // receive buffer.
        if f.held {
            progress = true;
            let mut next = st.clone();
            next.frags[i].held = false;
            succs.push(next);
        }
        // Adversary: drop or duplicate a data copy within budget.
        if f.data > 0 && st.drops_used < cfg.drop_budget {
            let mut next = st.clone();
            next.frags[i].data -= 1;
            next.drops_used += 1;
            succs.push(next);
        }
        if f.data > 0 && f.data < COPY_CAP && st.dups_used < cfg.dup_budget {
            let mut next = st.clone();
            next.frags[i].data += 1;
            next.dups_used += 1;
            succs.push(next);
        }
    }
    (succs, progress)
}

/// Checks that the exponential-backoff schedule is monotone and
/// saturates at its configured ceiling.
pub fn check_backoff(cfg: &ReliabilityConfig) -> Vec<String> {
    let mut v = Vec::new();
    let mut prev = None;
    for attempt in 0..64 {
        let t = cfg.timeout_for(attempt);
        if t > cfg.max_timeout() {
            v.push(format!(
                "backoff: attempt {attempt} timeout {t:?} exceeds the ceiling {:?}",
                cfg.max_timeout()
            ));
        }
        if let Some(p) = prev {
            if t < p {
                v.push(format!(
                    "backoff: attempt {attempt} timeout {t:?} shrank from {p:?}"
                ));
            }
        }
        prev = Some(t);
    }
    if cfg.timeout_for(63) != cfg.max_timeout() {
        v.push("backoff: schedule never reaches its ceiling".into());
    }
    v
}

/// Runs every standard configuration plus the backoff check.
pub fn check() -> CheckOutcome {
    let mut out = CheckOutcome::default();
    for cfg in ProtocolConfig::standard() {
        let one = explore(&cfg);
        out.states += one.states;
        out.transitions += one.transitions;
        out.violations.extend(one.violations);
    }
    out.violations
        .extend(check_backoff(&ReliabilityConfig::on()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_configs_are_clean() {
        let out = check();
        assert_eq!(out.violations, Vec::<String>::new());
        assert!(out.states > 100, "explored {} states", out.states);
    }

    #[test]
    fn drop_budget_beyond_retry_cap_deadlocks() {
        // The checker is not vacuous: give the adversary one more drop
        // than the sender has transmissions and the wedge is found.
        let cfg = ProtocolConfig {
            fragments: 1,
            buffers: 1,
            drop_budget: 3,
            dup_budget: 0,
            max_retries: 2,
        };
        let out = explore(&cfg);
        assert!(
            out.violations.iter().any(|v| v.contains("deadlock")),
            "got: {:?}",
            out.violations
        );
    }

    #[test]
    fn dedup_rebuild_is_order_independent() {
        // accept(1) then accept(0) compacts to the same window as
        // accept(0) then accept(1) — the rebuild in `ProtoState::dedup`
        // relies on this.
        let mut a = ReceiverDedup::default();
        assert!(a.accept(SRC, SeqNo(0)));
        assert!(a.accept(SRC, SeqNo(1)));
        let mut b = ReceiverDedup::default();
        assert!(b.accept(SRC, SeqNo(1)));
        assert!(b.accept(SRC, SeqNo(0)));
        for seq in 0..4 {
            assert_eq!(
                a.already_seen(SRC, SeqNo(seq)),
                b.already_seen(SRC, SeqNo(seq))
            );
        }
        assert_eq!(a.pending_window(SRC), b.pending_window(SRC));
    }

    #[test]
    fn backoff_schedule_is_sane() {
        assert_eq!(
            check_backoff(&ReliabilityConfig::on()),
            Vec::<String>::new()
        );
        assert_eq!(
            check_backoff(&ReliabilityConfig::default()),
            Vec::<String>::new()
        );
    }

    #[test]
    fn encoding_is_injective_over_reachable_states() {
        // `seen` distinguishes states purely by their encoding; spot
        // check that two nearby states do not collide.
        let cfg = ProtocolConfig {
            fragments: 2,
            buffers: 1,
            drop_budget: 1,
            dup_budget: 1,
            max_retries: 2,
        };
        let a = ProtoState::initial(&cfg);
        let mut b = ProtoState::initial(&cfg);
        b.frags[1].status = Status::Outstanding { attempt: 1 };
        b.frags[1].data = 1;
        assert_ne!(a.encode(&cfg), b.encode(&cfg));
    }
}
