//! `em3d` — 3-D electromagnetic wave propagation skeleton.
//!
//! The paper's em3d iterates over a bipartite graph, each node sending
//! two integers per edge to its graph neighbours through a custom update
//! protocol; *several update messages can be in flight*, creating the
//! bursty traffic that makes em3d one of the two buffering-bound
//! applications (Figures 1 and 3a). Table 4: 20 B updates 98 %, 12 B
//! control 2 %.
//!
//! The skeleton fixes a random bipartite neighbour set per node at
//! construction (degree 5, like the paper's input) and fires all of an
//! iteration's updates back-to-back — no waiting between sends — so the
//! receive side, not the send side, is the bottleneck.

use std::collections::VecDeque;

use nisim_core::process::{AppMessage, HandlerSpec, Process, SendSpec};
use nisim_engine::{Dur, Json, SplitMix64, Time};
use nisim_net::NodeId;

use super::AppParams;
use crate::skeleton::{step_from_json, step_to_json, Skeleton, SkeletonProcess, Step};

/// Tag of an edge-update message (12 B payload -> 20 B wire).
pub const TAG_UPDATE: u32 = 40;
/// Graph degree (neighbours per node), per the paper's input set.
pub const DEGREE: usize = 5;

/// Per-node em3d skeleton state.
pub struct Em3d {
    neighbors: Vec<NodeId>,
    params: AppParams,
    iters_left: u32,
    steps: VecDeque<Step>,
}

impl Em3d {
    fn new(node: NodeId, nodes: u32, seed: u64, params: AppParams) -> Em3d {
        // Fixed random bipartite-ish neighbour set: nodes alternate
        // between the two graph halves by parity.
        let mut rng = SplitMix64::new(seed ^ (0xE3_D0 + node.0 as u64));
        let mut neighbors = Vec::new();
        let mut guard = 0;
        while neighbors.len() < DEGREE.min(nodes as usize - 1) && guard < 1000 {
            guard += 1;
            let cand = NodeId(rng.gen_range(nodes as u64) as u32);
            let other_half = cand.0 % 2 != node.0 % 2;
            if cand != node && (other_half || nodes < 4) && !neighbors.contains(&cand) {
                neighbors.push(cand);
            }
        }
        if neighbors.is_empty() {
            neighbors.push(NodeId((node.0 + 1) % nodes));
        }
        Em3d {
            neighbors,
            params,
            iters_left: params.iterations,
            steps: VecDeque::new(),
        }
    }

    /// One iteration: a short compute phase then a *burst* of updates —
    /// `intensity` messages per edge, sent back-to-back, one neighbour at
    /// a time (all of an edge's updates are consecutive, so a popular
    /// graph node sees sustained many-to-one bursts).
    fn refill(&mut self) {
        self.steps.push_back(Step::Compute(self.params.compute));
        for &dst in &self.neighbors {
            for _ in 0..self.params.intensity {
                self.steps
                    .push_back(Step::Send(SendSpec::new(dst, 12, TAG_UPDATE)));
            }
        }
        self.steps.push_back(Step::Barrier);
    }
}

impl Skeleton for Em3d {
    fn next_step(&mut self, _now: Time) -> Step {
        if let Some(step) = self.steps.pop_front() {
            return step;
        }
        if self.iters_left == 0 {
            return Step::Done;
        }
        self.iters_left -= 1;
        self.refill();
        self.steps.pop_front().expect("refill produced steps")
    }

    fn on_app_message(&mut self, msg: &AppMessage, _now: Time) -> HandlerSpec {
        debug_assert_eq!(msg.tag, TAG_UPDATE);
        // Apply the two-integer update to the local graph node.
        HandlerSpec::compute(Dur::ns(120))
    }

    // The neighbour set is a pure function of (node, nodes, seed), so
    // only the program counter state needs to cross a checkpoint.
    fn snapshot(&self) -> Option<Json> {
        Some(
            Json::obj()
                .set("iters_left", u64::from(self.iters_left))
                .set(
                    "steps",
                    Json::Arr(self.steps.iter().map(step_to_json).collect()),
                ),
        )
    }

    fn restore(&mut self, state: &Json) -> bool {
        let Some(iters_left) = state.get("iters_left").and_then(Json::as_u64) else {
            return false;
        };
        let Some(steps) = state.get("steps").and_then(Json::as_arr).and_then(|a| {
            a.iter()
                .map(step_from_json)
                .collect::<Option<VecDeque<_>>>()
        }) else {
            return false;
        };
        if iters_left > u64::from(self.params.iterations) {
            return false;
        }
        self.iters_left = iters_left as u32;
        self.steps = steps;
        true
    }
}

/// Machine factory for em3d.
pub fn factory(nodes: u32, seed: u64, params: AppParams) -> impl FnMut(NodeId) -> Box<dyn Process> {
    move |id| {
        Box::new(SkeletonProcess::new(
            Em3d::new(id, nodes, seed, params),
            id,
            nodes,
        )) as Box<dyn Process>
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::MacroApp;
    use nisim_core::{MachineConfig, NiKind};
    use nisim_net::BufferCount;

    #[test]
    fn message_sizes_match_table4_modes() {
        let cfg = MachineConfig::with_ni(NiKind::Cni32Qm).nodes(16);
        let r = crate::apps::run_app(MacroApp::Em3d, &cfg, &MacroApp::Em3d.default_params());
        let h = &r.msg_sizes;
        assert!(
            h.fraction_of(20) > 0.9,
            "20 B fraction {} (paper: 0.98)",
            h.fraction_of(20)
        );
        assert!(h.fraction_of(12) > 0.0 && h.fraction_of(12) < 0.1);
    }

    #[test]
    fn bursts_stress_small_buffer_pools() {
        // The paper's key em3d result: tight flow-control buffering hurts
        // badly because updates are bursty.
        let tight = MachineConfig::with_ni(NiKind::Cm5)
            .nodes(16)
            .flow_buffers(BufferCount::Finite(1));
        let loose = MachineConfig::with_ni(NiKind::Cm5)
            .nodes(16)
            .flow_buffers(BufferCount::Infinite);
        let p = MacroApp::Em3d.default_params();
        let rt = crate::apps::run_app(MacroApp::Em3d, &tight, &p);
        let rl = crate::apps::run_app(MacroApp::Em3d, &loose, &p);
        assert!(
            rt.elapsed.as_ns() as f64 > 1.1 * rl.elapsed.as_ns() as f64,
            "tight {:?} vs loose {:?}",
            rt.elapsed,
            rl.elapsed
        );
        assert!(rt.retries > 0, "bursts should trigger returns");
    }

    #[test]
    fn neighbor_sets_are_stable_and_cross_parity() {
        let a = Em3d::new(NodeId(3), 16, 42, MacroApp::Em3d.default_params());
        let b = Em3d::new(NodeId(3), 16, 42, MacroApp::Em3d.default_params());
        assert_eq!(a.neighbors, b.neighbors);
        for n in &a.neighbors {
            assert_eq!(n.0 % 2, 0, "node 3's neighbours are in the even half");
        }
    }
}
