//! `spsolve` — very fine-grain iterative sparse-matrix solver skeleton.
//!
//! The paper's spsolve propagates active messages down the edges of a
//! DAG; *all computation happens in the handlers* (one double-word
//! addition per message), several messages are in flight at once, and
//! traffic is bursty — the second of the two buffering-bound
//! applications. Table 4: 20 B 91 %, 8 B 6 %, 12 B 3 %.
//!
//! The skeleton seeds bursts of "sparks" that chain through random nodes
//! with a hop budget: each handler does a tiny addition and forwards the
//! spark, reproducing both the burstiness and the
//! all-work-in-handlers structure.

use std::collections::VecDeque;

use nisim_core::process::{AppMessage, HandlerSpec, Process, SendSpec};
use nisim_engine::{Dur, Json, Time};
use nisim_net::NodeId;

use super::AppParams;
use crate::skeleton::{step_from_json, step_to_json, Skeleton, SkeletonProcess, Step};

/// Sparks carry their remaining hop budget in the tag above this base.
pub const TAG_SPARK_BASE: u32 = 600;
/// Tag of a header-only (8 B wire) completion notice.
pub const TAG_NOTICE: u32 = 60;
/// Hop budget of each seeded spark (DAG depth below the seeds).
pub const SPARK_TTL: u32 = 6;
/// In-degree of a DAG element: arrivals accumulated before it fires.
pub const IN_DEGREE: u32 = 6;
/// Out-degree of a DAG element: the burst fired on completion. Bursts
/// larger than the flow-control buffer pool are what make spsolve
/// buffering-bound (its paper breakeven is 33 buffers).
pub const OUT_DEGREE: u32 = 8;

/// Per-node spsolve skeleton state.
pub struct Spsolve {
    me: NodeId,
    nodes: u32,
    params: AppParams,
    iters_left: u32,
    steps: VecDeque<Step>,
    /// Arrivals accumulated per DAG level towards element completions.
    acc: Vec<u32>,
    /// Elements fired per DAG level (drives deterministic edge routing).
    fired: Vec<u32>,
}

impl Spsolve {
    fn new(node: NodeId, nodes: u32, params: AppParams) -> Spsolve {
        Spsolve {
            me: node,
            nodes,
            params,
            iters_left: params.iterations,
            steps: VecDeque::new(),
            acc: vec![0; SPARK_TTL as usize + 1],
            fired: vec![0; SPARK_TTL as usize + 1],
        }
    }

    /// DAG edges have partition locality: out-edges lead to the next two
    /// partitions. Routing is a pure function of how many elements this
    /// node has fired at the level (not of event timing), so the total
    /// message volume is identical across NI designs and buffer counts —
    /// the comparisons measure the NI, not workload noise.
    fn forward_peer(&mut self, level: usize, edge: u32) -> NodeId {
        let hop = 1 + ((self.fired[level] + edge) % 2) as u64;
        NodeId(((self.me.0 as u64 + hop) % self.nodes as u64) as u32)
    }

    /// One solver wavefront: seed a burst of sparks down the local DAG
    /// elements' out-edges. Unlike the time-stepped applications, the
    /// solve is one continuous DAG propagation — wavefronts are *not*
    /// separated by barriers (only a final barrier closes the run), so
    /// in-flight traffic from successive wavefronts overlaps, exactly the
    /// burstiness that makes spsolve buffering-bound.
    fn refill(&mut self) {
        let seeds = self.params.intensity;
        self.steps.push_back(Step::Compute(self.params.compute));
        for k in 0..seeds {
            // Seeds follow the same partition-local edges as the
            // wavefront, so elements actually complete.
            let hop = 1 + (k % 2) as u64;
            let dst = NodeId(((self.me.0 as u64 + hop) % self.nodes as u64) as u32);
            self.steps.push_back(Step::Send(SendSpec::new(
                dst,
                12,
                TAG_SPARK_BASE + SPARK_TTL,
            )));
        }
        if self.iters_left == 0 {
            self.steps.push_back(Step::Barrier);
        }
    }
}

impl Skeleton for Spsolve {
    fn next_step(&mut self, _now: Time) -> Step {
        if let Some(step) = self.steps.pop_front() {
            return step;
        }
        if self.iters_left == 0 {
            return Step::Done;
        }
        self.iters_left -= 1;
        self.refill();
        self.steps.pop_front().expect("refill produced steps")
    }

    fn on_app_message(&mut self, msg: &AppMessage, _now: Time) -> HandlerSpec {
        match msg.tag {
            t if t > TAG_SPARK_BASE => {
                // One double-word addition per arriving operand; a DAG
                // element completes after IN_DEGREE arrivals and fires
                // its OUT_DEGREE out-edges in one burst.
                let ttl = t - TAG_SPARK_BASE - 1;
                let compute = Dur::ns(15);
                let level = ttl as usize;
                self.acc[level] += 1;
                if self.acc[level] < IN_DEGREE {
                    return HandlerSpec::compute(compute);
                }
                self.acc[level] = 0;
                let fire_ttl = ttl;
                if fire_ttl == 0 {
                    // Bottom of the DAG: a header-only completion notice
                    // (the 8 B mode of Table 4).
                    let dst = NodeId((self.me.0 + 1) % self.nodes);
                    self.fired[level] += 1;
                    HandlerSpec::reply(compute, SendSpec::new(dst, 0, TAG_NOTICE))
                } else {
                    let sends = (0..OUT_DEGREE)
                        .map(|e| {
                            SendSpec::new(
                                self.forward_peer(level, e),
                                12,
                                TAG_SPARK_BASE + fire_ttl,
                            )
                        })
                        .collect();
                    self.fired[level] += 1;
                    HandlerSpec { compute, sends }
                }
            }
            TAG_NOTICE => HandlerSpec::compute(Dur::ns(10)),
            other => unreachable!("spsolve got unexpected tag {other}"),
        }
    }

    fn snapshot(&self) -> Option<Json> {
        let levels = |v: &[u32]| Json::Arr(v.iter().map(|&x| Json::from(x)).collect());
        Some(
            Json::obj()
                .set("iters_left", u64::from(self.iters_left))
                .set(
                    "steps",
                    Json::Arr(self.steps.iter().map(step_to_json).collect()),
                )
                .set("acc", levels(&self.acc))
                .set("fired", levels(&self.fired)),
        )
    }

    fn restore(&mut self, state: &Json) -> bool {
        let levels = |v: &Json| -> Option<Vec<u32>> {
            v.as_arr()?
                .iter()
                .map(|x| {
                    let x = x.as_u64()?;
                    (x <= u32::MAX as u64).then_some(x as u32)
                })
                .collect()
        };
        let Some(iters_left) = state.get("iters_left").and_then(Json::as_u64) else {
            return false;
        };
        let Some(steps) = state.get("steps").and_then(Json::as_arr).and_then(|a| {
            a.iter()
                .map(step_from_json)
                .collect::<Option<VecDeque<_>>>()
        }) else {
            return false;
        };
        let (Some(acc), Some(fired)) = (
            state.get("acc").and_then(&levels),
            state.get("fired").and_then(&levels),
        ) else {
            return false;
        };
        if iters_left > u64::from(self.params.iterations)
            || acc.len() != self.acc.len()
            || fired.len() != self.fired.len()
        {
            return false;
        }
        self.iters_left = iters_left as u32;
        self.steps = steps;
        self.acc = acc;
        self.fired = fired;
        true
    }
}

/// Machine factory for spsolve.
pub fn factory(
    nodes: u32,
    _seed: u64,
    params: AppParams,
) -> impl FnMut(NodeId) -> Box<dyn Process> {
    move |id| {
        Box::new(SkeletonProcess::new(
            Spsolve::new(id, nodes, params),
            id,
            nodes,
        )) as Box<dyn Process>
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::MacroApp;
    use nisim_core::{MachineConfig, NiKind};
    use nisim_net::BufferCount;

    #[test]
    fn message_sizes_match_table4_modes() {
        let cfg = MachineConfig::with_ni(NiKind::Cni32Qm).nodes(16);
        let r = crate::apps::run_app(MacroApp::Spsolve, &cfg, &MacroApp::Spsolve.default_params());
        let h = &r.msg_sizes;
        assert!(
            h.fraction_of(20) > 0.75,
            "20 B fraction {} (paper: 0.91)",
            h.fraction_of(20)
        );
        assert!(h.fraction_of(8) > 0.02, "8 B fraction {}", h.fraction_of(8));
        assert!(h.fraction_of(12) > 0.0, "12 B barrier traffic expected");
    }

    #[test]
    fn dag_propagation_amplifies_seeds() {
        // Elements fire OUT_DEGREE sparks per IN_DEGREE arrivals, so the
        // wavefront grows geometrically before the hop budget kills it.
        let cfg = MachineConfig::with_ni(NiKind::Ap3000).nodes(8);
        let p = AppParams {
            iterations: 2,
            intensity: 8,
            compute: Dur::us(1),
        };
        let r = crate::apps::run_app(MacroApp::Spsolve, &cfg, &p);
        let seeds = 8 * 2 * 8u64;
        assert!(
            r.app_messages > 3 * seeds,
            "only {} messages from {seeds} seeds",
            r.app_messages
        );
    }

    #[test]
    fn buffering_dominates_with_one_buffer() {
        // The paper's headline spsolve result: with few flow-control
        // buffers the CM-5-like NI spends a large share of time on
        // buffering stalls.
        let cfg = MachineConfig::with_ni(NiKind::Cm5)
            .nodes(16)
            .flow_buffers(BufferCount::Finite(1));
        let r = crate::apps::run_app(MacroApp::Spsolve, &cfg, &MacroApp::Spsolve.default_params());
        assert!(r.retries > 0, "bursts should cause returns");
    }
}
