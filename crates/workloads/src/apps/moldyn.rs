//! `moldyn` — molecular dynamics (CHARMM-like non-bonded force) skeleton.
//!
//! The paper's moldyn communicates mainly through a *custom bulk
//! reduction protocol*: in each of P reduction rounds a processor sends
//! 1.5 KB to its ring neighbour through Tempest virtual channels.
//! Table 4: 12 B control 65 %, 140 B chunks 27 %, 3084 B bulk 2 %, 8 B
//! 5 %.
//!
//! The skeleton's iteration is a ring reduction: a bulk 3 KB message plus
//! a stream of 140 B chunks to the ring successor, paced by 12 B
//! credit/control messages, then a barrier.

use std::collections::VecDeque;

use nisim_core::process::{AppMessage, HandlerSpec, Process, SendSpec};
use nisim_engine::{Dur, Time};
use nisim_net::NodeId;

use super::AppParams;
use crate::skeleton::{Skeleton, SkeletonProcess, Step};

/// Tag of a bulk reduction payload (3084 B wire).
pub const TAG_BULK: u32 = 50;
/// Tag of a 140 B reduction chunk.
pub const TAG_CHUNK: u32 = 51;
/// Tag of a 12 B control/credit message.
pub const TAG_CTRL: u32 = 52;
/// Tag of an 8 B (header-only) channel probe.
pub const TAG_PROBE: u32 = 53;

/// Per-node moldyn skeleton state.
pub struct Moldyn {
    successor: NodeId,
    params: AppParams,
    iters_left: u32,
    steps: VecDeque<Step>,
    /// Bulk messages received this iteration (reduction arrival).
    bulks_received: u32,
    bulks_expected: u32,
}

impl Moldyn {
    fn new(node: NodeId, nodes: u32, params: AppParams) -> Moldyn {
        Moldyn {
            successor: NodeId((node.0 + 1) % nodes),
            params,
            iters_left: params.iterations,
            steps: VecDeque::new(),
            bulks_received: 0,
            bulks_expected: 0,
        }
    }

    /// One reduction round: force computation, control traffic, the
    /// chunked + bulk transfer to the ring successor, wait for our own
    /// predecessor's bulk, then the iteration barrier.
    ///
    /// Message mix per round and node: 1×3084 B, 13×140 B, 33×12 B,
    /// 2×8 B — the Table 4 proportions (≈2 %/27 %/65 %/4 %).
    fn refill(&mut self) {
        let rounds = self.params.intensity;
        self.bulks_expected = rounds;
        self.bulks_received = 0;
        let chunk = Dur::ns(self.params.compute.as_ns() / rounds.max(1) as u64 / 2);
        for _ in 0..rounds {
            self.steps.push_back(Step::Compute(chunk));
            let dst = self.successor;
            for _ in 0..2 {
                self.steps
                    .push_back(Step::Send(SendSpec::new(dst, 0, TAG_PROBE)));
            }
            // Credit/control messages interleaved with the chunk stream.
            for k in 0..33u32 {
                self.steps
                    .push_back(Step::Send(SendSpec::new(dst, 4, TAG_CTRL)));
                if k % 3 == 0 && k / 3 < 13 {
                    self.steps
                        .push_back(Step::Send(SendSpec::new(dst, 132, TAG_CHUNK)));
                }
            }
            self.steps
                .push_back(Step::Send(SendSpec::new(dst, 3076, TAG_BULK)));
            self.steps.push_back(Step::Compute(chunk));
        }
        self.steps.push_back(Step::WaitUntilReady);
        self.steps.push_back(Step::Barrier);
    }
}

impl Skeleton for Moldyn {
    fn next_step(&mut self, _now: Time) -> Step {
        if let Some(step) = self.steps.pop_front() {
            return step;
        }
        if self.iters_left == 0 {
            return Step::Done;
        }
        self.iters_left -= 1;
        self.refill();
        self.steps.pop_front().expect("refill produced steps")
    }

    fn on_app_message(&mut self, msg: &AppMessage, _now: Time) -> HandlerSpec {
        match msg.tag {
            TAG_BULK => {
                self.bulks_received += 1;
                // Fold the received partial forces into the local sum.
                HandlerSpec::compute(Dur::ns(1500))
            }
            TAG_CHUNK => HandlerSpec::compute(Dur::ns(400)),
            TAG_CTRL | TAG_PROBE => HandlerSpec::compute(Dur::ns(100)),
            other => unreachable!("moldyn got unexpected tag {other}"),
        }
    }

    fn ready_to_proceed(&self) -> bool {
        self.bulks_received >= self.bulks_expected
    }
}

/// Machine factory for moldyn.
pub fn factory(
    nodes: u32,
    _seed: u64,
    params: AppParams,
) -> impl FnMut(NodeId) -> Box<dyn Process> {
    move |id| {
        Box::new(SkeletonProcess::new(
            Moldyn::new(id, nodes, params),
            id,
            nodes,
        )) as Box<dyn Process>
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::MacroApp;
    use nisim_core::{MachineConfig, NiKind};

    #[test]
    fn message_sizes_match_table4_modes() {
        let cfg = MachineConfig::with_ni(NiKind::Cni32Qm).nodes(16);
        let r = crate::apps::run_app(MacroApp::Moldyn, &cfg, &MacroApp::Moldyn.default_params());
        let h = &r.msg_sizes;
        assert!(
            (0.55..=0.75).contains(&h.fraction_of(12)),
            "12 B fraction {} (paper: 0.65)",
            h.fraction_of(12)
        );
        assert!(
            (0.18..=0.36).contains(&h.fraction_of(140)),
            "140 B fraction {} (paper: 0.27)",
            h.fraction_of(140)
        );
        assert!(
            (0.005..=0.05).contains(&h.fraction_of(3084)),
            "3084 B fraction {} (paper: 0.02)",
            h.fraction_of(3084)
        );
        assert!(h.fraction_of(8) > 0.0);
    }

    #[test]
    fn bulk_messages_fragment_on_the_wire() {
        // A 3084 B message is 13 network fragments (<=256 B each), so
        // fragments sent far exceed application messages.
        let cfg = MachineConfig::with_ni(NiKind::Ap3000).nodes(4);
        let p = AppParams {
            iterations: 1,
            intensity: 1,
            compute: Dur::us(1),
        };
        let r = crate::apps::run_app(MacroApp::Moldyn, &cfg, &p);
        assert!(r.fragments_sent > r.app_messages);
    }

    #[test]
    fn reduction_is_ring_ordered() {
        let m = Moldyn::new(NodeId(3), 4, MacroApp::Moldyn.default_params());
        assert_eq!(m.successor, NodeId(0));
    }
}
