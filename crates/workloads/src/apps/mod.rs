//! The seven macrobenchmark communication skeletons (§5.2, Table 4).
//!
//! | app | pattern | skeleton module |
//! |---|---|---|
//! | appbt | near-neighbour request/response on a 3-D grid | [`appbt`] |
//! | barnes | irregular all-to-all request/response | [`barnes`] |
//! | dsmc | fine-grain producer/consumer particle exchange | [`dsmc`] |
//! | em3d | bursty one-way graph updates | [`em3d`] |
//! | moldyn | bulk ring reduction | [`moldyn`] |
//! | spsolve | very fine-grain DAG propagation | [`spsolve`] |
//! | unstructured | single-producer multi-consumer bulk updates | [`unstructured`] |

pub mod appbt;
pub mod barnes;
pub mod dsmc;
pub mod em3d;
pub mod moldyn;
pub mod spsolve;
pub mod unstructured;

use nisim_core::process::Process;
use nisim_core::{Machine, MachineConfig, MachineReport};
use nisim_engine::{Dur, SimStatus};
use nisim_net::NodeId;

/// Which macrobenchmark to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MacroApp {
    /// NAS appbt: 3-D CFD, near-neighbour shared-memory protocol.
    Appbt,
    /// Barnes-Hut N-body: irregular shared-memory protocol.
    Barnes,
    /// Discrete simulation Monte Carlo: producer/consumer particles.
    Dsmc,
    /// Electromagnetic wave propagation: bursty fine-grain updates.
    Em3d,
    /// Molecular dynamics: custom bulk reduction protocol.
    Moldyn,
    /// Sparse iterative solver: DAG-propagated active messages.
    Spsolve,
    /// Unstructured-mesh CFD: batched single-producer/multi-consumer.
    Unstructured,
}

impl MacroApp {
    /// All seven, in the paper's order.
    pub const ALL: [MacroApp; 7] = [
        MacroApp::Appbt,
        MacroApp::Barnes,
        MacroApp::Dsmc,
        MacroApp::Em3d,
        MacroApp::Moldyn,
        MacroApp::Spsolve,
        MacroApp::Unstructured,
    ];

    /// Parses a [`name`](MacroApp::name) back into an app (sweep records
    /// and CLI flags are keyed on the paper's names).
    pub fn from_name(name: &str) -> Option<MacroApp> {
        MacroApp::ALL.into_iter().find(|a| a.name() == name)
    }

    /// The benchmark's name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            MacroApp::Appbt => "appbt",
            MacroApp::Barnes => "barnes",
            MacroApp::Dsmc => "dsmc",
            MacroApp::Em3d => "em3d",
            MacroApp::Moldyn => "moldyn",
            MacroApp::Spsolve => "spsolve",
            MacroApp::Unstructured => "unstructured",
        }
    }

    /// Default (scaled-down) parameters tuned so the full NI × buffer
    /// sweeps finish quickly while preserving each pattern's character.
    pub fn default_params(self) -> AppParams {
        match self {
            // Request/response apps: computation dominates per iteration
            // (the real applications are compute-heavy CFD/N-body codes).
            MacroApp::Appbt => AppParams {
                iterations: 4,
                intensity: 4,
                compute: Dur::us(12),
            },
            MacroApp::Barnes => AppParams {
                iterations: 4,
                intensity: 6,
                compute: Dur::us(12),
            },
            MacroApp::Dsmc => AppParams {
                iterations: 5,
                intensity: 8,
                compute: Dur::us(14),
            },
            // The two bursty fine-grain apps: little compute per message.
            MacroApp::Em3d => AppParams {
                iterations: 5,
                intensity: 26,
                compute: Dur::us(3),
            },
            MacroApp::Spsolve => AppParams {
                iterations: 4,
                intensity: 10,
                compute: Dur::us(1),
            },
            MacroApp::Moldyn => AppParams {
                iterations: 3,
                intensity: 1,
                compute: Dur::us(20),
            },
            MacroApp::Unstructured => AppParams {
                iterations: 4,
                intensity: 2,
                compute: Dur::us(16),
            },
        }
    }
}

impl std::fmt::Display for MacroApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Scale parameters of a macrobenchmark skeleton.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppParams {
    /// Outer iterations (time steps).
    pub iterations: u32,
    /// Per-iteration communication intensity multiplier (requests per
    /// neighbour, updates per edge, sparks per node, ...).
    pub intensity: u32,
    /// Base computation per iteration per node.
    pub compute: Dur,
}

/// The machine factory for `app`, boxed — for callers that drive the
/// machine themselves (checkpoint slicing, kill-and-resume) and so need
/// to rebuild the identical factory on restore.
pub fn factory(
    app: MacroApp,
    nodes: u32,
    seed: u64,
    params: AppParams,
) -> Box<dyn FnMut(NodeId) -> Box<dyn Process>> {
    match app {
        MacroApp::Appbt => Box::new(appbt::factory(nodes, seed, params)),
        MacroApp::Barnes => Box::new(barnes::factory(nodes, seed, params)),
        MacroApp::Dsmc => Box::new(dsmc::factory(nodes, seed, params)),
        MacroApp::Em3d => Box::new(em3d::factory(nodes, seed, params)),
        MacroApp::Moldyn => Box::new(moldyn::factory(nodes, seed, params)),
        MacroApp::Spsolve => Box::new(spsolve::factory(nodes, seed, params)),
        MacroApp::Unstructured => Box::new(unstructured::factory(nodes, seed, params)),
    }
}

/// Runs `app` on the machine described by `cfg` and returns the report.
pub fn run_app(app: MacroApp, cfg: &MachineConfig, params: &AppParams) -> MachineReport {
    let cfg = cfg.clone();
    let nodes = cfg.nodes;
    let seed = cfg.seed;
    let params = *params;
    let report = Machine::run(cfg, factory(app, nodes, seed, params));
    // A watchdog-stalled run carries its own diagnostics (the caller
    // inspects `status`/`stall`); anything else short of quiescence is
    // a simulator bug.
    assert!(
        report.all_quiescent || report.status == SimStatus::Stalled,
        "{app} did not reach quiescence (status {:?})",
        report.status
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisim_core::snapshot::{restore, save, SnapshotError};
    use nisim_core::{MachineSim, NiKind};
    use nisim_engine::Time;

    fn run_to_end(m: &mut Machine, sim: &mut MachineSim) -> String {
        let status = m.run_slice(sim, Time::from_ns(60_000_000_000), 500_000_000);
        format!("{:?}", m.report(sim, status))
    }

    #[test]
    fn em3d_and_spsolve_checkpoints_resume_identically() {
        let params = AppParams {
            iterations: 2,
            intensity: 4,
            compute: Dur::us(1),
        };
        for app in [MacroApp::Em3d, MacroApp::Spsolve] {
            let cfg = MachineConfig::with_ni(NiKind::Cni32Qm).nodes(4);
            let mk = || factory(app, 4, cfg.seed, params);
            let mut golden = Machine::new(cfg.clone(), mk());
            let mut gsim = MachineSim::new();
            golden.start(&mut gsim);
            let golden_report = run_to_end(&mut golden, &mut gsim);
            for cut in [3u64, 50, 400] {
                let mut m = Machine::new(cfg.clone(), mk());
                let mut sim = MachineSim::new();
                m.start(&mut sim);
                m.run_slice(&mut sim, Time::from_ns(60_000_000_000), cut);
                let snap = save(&m, &mut sim).expect("snapshot");
                let (mut resumed, mut rsim) = restore(cfg.clone(), mk(), &snap).expect("restore");
                let resumed_report = run_to_end(&mut resumed, &mut rsim);
                assert_eq!(
                    resumed_report, golden_report,
                    "{app}: cut at {cut} diverged"
                );
            }
        }
    }

    #[test]
    fn apps_without_snapshot_support_fail_typed() {
        let cfg = MachineConfig::with_ni(NiKind::Cm5).nodes(4);
        let mut m = Machine::new(
            cfg.clone(),
            factory(
                MacroApp::Barnes,
                4,
                cfg.seed,
                MacroApp::Barnes.default_params(),
            ),
        );
        let mut sim = MachineSim::new();
        m.start(&mut sim);
        assert_eq!(
            save(&m, &mut sim).err(),
            Some(SnapshotError::UnsupportedWorkload { node: 0 })
        );
    }

    #[test]
    fn every_app_completes_on_the_reference_ni() {
        let cfg = MachineConfig::with_ni(NiKind::Ap3000).nodes(16);
        for app in MacroApp::ALL {
            let r = run_app(app, &cfg, &app.default_params());
            assert!(r.app_messages > 50, "{app} sent too few messages");
        }
    }

    #[test]
    fn names_match_the_paper() {
        let names: Vec<&str> = MacroApp::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            [
                "appbt",
                "barnes",
                "dsmc",
                "em3d",
                "moldyn",
                "spsolve",
                "unstructured"
            ]
        );
    }
}
