//! `barnes` — Barnes-Hut hierarchical N-body skeleton.
//!
//! The paper's barnes communicates *irregularly between all processors*
//! through Tempest's default shared-memory protocol: tree-walk requests
//! to whichever node owns the needed body/cell, answered with tree-node
//! data. Table 4: 12 B 67 %, 16 B 4 %, 140 B 29 %.
//!
//! The skeleton issues windows of requests to uniformly random peers
//! (the tree ownership is effectively random for a skeleton), keeping a
//! few outstanding at once, with responder-chosen reply sizes matching
//! the Table 4 mix.

use std::collections::VecDeque;

use nisim_core::process::{AppMessage, HandlerSpec, Process, SendSpec};
use nisim_engine::{Dur, SplitMix64, Time};
use nisim_net::NodeId;

use super::AppParams;
use crate::skeleton::{Skeleton, SkeletonProcess, Step};

/// Tag of a tree-walk request (12 B wire).
pub const TAG_REQ: u32 = 20;
/// Tag of a reply (140 B cell data, 12 B ack, or 16 B summary).
pub const TAG_RESP: u32 = 21;

/// Per-node barnes skeleton state.
pub struct Barnes {
    me: NodeId,
    nodes: u32,
    params: AppParams,
    rng: SplitMix64,
    iters_left: u32,
    steps: VecDeque<Step>,
    expected_responses: u32,
    responses: u32,
}

impl Barnes {
    fn new(node: NodeId, nodes: u32, seed: u64, params: AppParams) -> Barnes {
        Barnes {
            me: node,
            nodes,
            params,
            rng: SplitMix64::new(seed ^ (0xBA_12 + node.0 as u64)),
            iters_left: params.iterations,
            steps: VecDeque::new(),
            expected_responses: 0,
            responses: 0,
        }
    }

    fn random_peer(&mut self) -> NodeId {
        loop {
            let n = NodeId(self.rng.gen_range(self.nodes as u64) as u32);
            if n != self.me {
                return n;
            }
        }
    }

    /// One iteration: bursts of tree-walk requests to random owners
    /// (window of `intensity` outstanding), wait for replies, barrier.
    fn refill(&mut self) {
        let windows = 4;
        let per_window = self.params.intensity;
        let total = windows * per_window;
        let chunk = Dur::ns(self.params.compute.as_ns() / windows.max(1) as u64);
        self.expected_responses = total;
        self.responses = 0;
        for _ in 0..windows {
            self.steps.push_back(Step::Compute(chunk));
            for _ in 0..per_window {
                let dst = self.random_peer();
                self.steps
                    .push_back(Step::Send(SendSpec::new(dst, 4, TAG_REQ)));
            }
        }
        self.steps.push_back(Step::WaitUntilReady);
        self.steps.push_back(Step::Barrier);
    }
}

impl Skeleton for Barnes {
    fn next_step(&mut self, _now: Time) -> Step {
        if let Some(step) = self.steps.pop_front() {
            return step;
        }
        if self.iters_left == 0 {
            return Step::Done;
        }
        self.iters_left -= 1;
        self.refill();
        self.steps.pop_front().expect("refill produced steps")
    }

    fn on_app_message(&mut self, msg: &AppMessage, _now: Time) -> HandlerSpec {
        match msg.tag {
            TAG_REQ => {
                // Reply mix calibrated to Table 4: with requests at 12 B
                // making up half the traffic, replies are 140 B cell data
                // 58 % (-> 29 % overall), 12 B acks 34 % (-> 67 % overall
                // with requests and barrier traffic), 16 B summaries 8 %.
                let x = self.rng.gen_f64();
                let payload = if x < 0.58 {
                    132
                } else if x < 0.92 {
                    4
                } else {
                    8
                };
                HandlerSpec::reply(Dur::ns(1200), SendSpec::new(msg.src, payload, TAG_RESP))
            }
            TAG_RESP => {
                self.responses += 1;
                HandlerSpec::compute(Dur::ns(700))
            }
            other => unreachable!("barnes got unexpected tag {other}"),
        }
    }

    fn ready_to_proceed(&self) -> bool {
        self.responses >= self.expected_responses
    }
}

/// Machine factory for barnes.
pub fn factory(nodes: u32, seed: u64, params: AppParams) -> impl FnMut(NodeId) -> Box<dyn Process> {
    move |id| {
        Box::new(SkeletonProcess::new(
            Barnes::new(id, nodes, seed, params),
            id,
            nodes,
        )) as Box<dyn Process>
    }
}

#[cfg(test)]
mod tests {

    use crate::apps::MacroApp;
    use nisim_core::{MachineConfig, NiKind};

    #[test]
    fn message_sizes_match_table4_modes() {
        let cfg = MachineConfig::with_ni(NiKind::Cni32Qm).nodes(16);
        let r = crate::apps::run_app(MacroApp::Barnes, &cfg, &MacroApp::Barnes.default_params());
        let h = &r.msg_sizes;
        assert!(
            (0.55..=0.78).contains(&h.fraction_of(12)),
            "12 B fraction {} (paper: 0.67)",
            h.fraction_of(12)
        );
        assert!(
            (0.18..=0.4).contains(&h.fraction_of(140)),
            "140 B fraction {} (paper: 0.29)",
            h.fraction_of(140)
        );
        assert!(h.fraction_of(16) > 0.0 && h.fraction_of(16) < 0.12);
    }

    #[test]
    fn traffic_is_irregular_not_ring() {
        // With 16 nodes and random peers, many distinct pairs talk.
        let cfg = MachineConfig::with_ni(NiKind::Ap3000).nodes(16);
        let r = crate::apps::run_app(MacroApp::Barnes, &cfg, &MacroApp::Barnes.default_params());
        // Sanity: substantial traffic happened and completed.
        assert!(r.app_messages > 1000);
        assert!(r.all_quiescent);
    }

    #[test]
    fn average_size_in_paper_range() {
        let cfg = MachineConfig::with_ni(NiKind::Cni32Qm).nodes(16);
        let r = crate::apps::run_app(MacroApp::Barnes, &cfg, &MacroApp::Barnes.default_params());
        let avg = r.msg_sizes.mean();
        assert!(
            (19.0..=230.0).contains(&avg),
            "avg {avg} outside the paper's 19-230 B range"
        );
    }
}
