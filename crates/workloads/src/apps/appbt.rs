//! `appbt` — NAS 3-D computational fluid dynamics skeleton.
//!
//! The paper's appbt divides a cube into subcubes, one per processor;
//! each iteration exchanges subcube boundaries with the six grid
//! neighbours through Tempest's invalidation-based shared-memory
//! protocol — i.e. *request/response* traffic on a static near-neighbour
//! topology. Table 4: 12-byte messages (requests, control) 67 %,
//! 32-byte messages (data responses) 32 %.

use std::collections::VecDeque;

use nisim_core::process::{AppMessage, HandlerSpec, Process, SendSpec};
use nisim_engine::{Dur, SplitMix64, Time};
use nisim_net::NodeId;

use super::AppParams;
use crate::skeleton::{Skeleton, SkeletonProcess, Step};

/// Tag of a boundary-data request (12 B on the wire).
pub const TAG_REQ: u32 = 10;
/// Tag of a response (32 B data or 12 B control acknowledgement).
pub const TAG_RESP: u32 = 11;

/// Factors `n` into three dimensions as balanced as possible.
pub fn grid_dims(n: u32) -> (u32, u32, u32) {
    assert!(n >= 1);
    let mut best = (n, 1, 1);
    let mut best_spread = n;
    for x in 1..=n {
        if !n.is_multiple_of(x) {
            continue;
        }
        let rest = n / x;
        for y in 1..=rest {
            if !rest.is_multiple_of(y) {
                continue;
            }
            let z = rest / y;
            let spread = x.max(y).max(z) - x.min(y).min(z);
            if spread < best_spread {
                best_spread = spread;
                best = (x, y, z);
            }
        }
    }
    best
}

/// The distinct face neighbours of `node` on a wrap-around 3-D grid.
pub fn grid_neighbors(node: u32, dims: (u32, u32, u32)) -> Vec<NodeId> {
    let (dx, dy, dz) = dims;
    let (x, y, z) = (node % dx, (node / dx) % dy, node / (dx * dy));
    let idx = |x: u32, y: u32, z: u32| NodeId(x + y * dx + z * dx * dy);
    let mut out = Vec::new();
    let mut push = |n: NodeId| {
        if n.0 != node && !out.contains(&n) {
            out.push(n);
        }
    };
    push(idx((x + 1) % dx, y, z));
    push(idx((x + dx - 1) % dx, y, z));
    push(idx(x, (y + 1) % dy, z));
    push(idx(x, (y + dy - 1) % dy, z));
    push(idx(x, y, (z + 1) % dz));
    push(idx(x, y, (z + dz - 1) % dz));
    out
}

/// Per-node appbt skeleton state.
pub struct Appbt {
    neighbors: Vec<NodeId>,
    params: AppParams,
    rng: SplitMix64,
    iters_left: u32,
    steps: VecDeque<Step>,
    expected_responses: u32,
    responses: u32,
}

impl Appbt {
    fn new(node: NodeId, nodes: u32, seed: u64, params: AppParams) -> Appbt {
        let dims = grid_dims(nodes);
        Appbt {
            neighbors: grid_neighbors(node.0, dims),
            params,
            rng: SplitMix64::new(seed ^ (0xA9_B7 + node.0 as u64)),
            iters_left: params.iterations,
            steps: VecDeque::new(),
            expected_responses: 0,
            responses: 0,
        }
    }

    /// Builds one iteration's program: interleaved compute and boundary
    /// requests to every neighbour, then wait for all responses, then an
    /// iteration barrier.
    fn refill(&mut self) {
        let requests = self.params.intensity * self.neighbors.len() as u32;
        let chunk = Dur::ns(self.params.compute.as_ns() / requests.max(1) as u64);
        self.expected_responses = requests;
        self.responses = 0;
        for k in 0..requests {
            let dst = self.neighbors[(k as usize) % self.neighbors.len()];
            self.steps.push_back(Step::Compute(chunk));
            // 4 B payload = 12 B on the wire: a boundary-block request.
            self.steps
                .push_back(Step::Send(SendSpec::new(dst, 4, TAG_REQ)));
        }
        self.steps.push_back(Step::WaitUntilReady);
        self.steps.push_back(Step::Barrier);
    }
}

impl Skeleton for Appbt {
    fn next_step(&mut self, _now: Time) -> Step {
        if let Some(step) = self.steps.pop_front() {
            return step;
        }
        if self.iters_left == 0 {
            return Step::Done;
        }
        self.iters_left -= 1;
        self.refill();
        self.steps.pop_front().expect("refill produced steps")
    }

    fn on_app_message(&mut self, msg: &AppMessage, _now: Time) -> HandlerSpec {
        match msg.tag {
            TAG_REQ => {
                // Two thirds of responses carry boundary data (24 B
                // payload -> 32 B wire); the rest are control-only
                // acknowledgements (4 B -> 12 B wire), reproducing the
                // 67/32 split of Table 4.
                let payload = if self.rng.gen_bool(2.0 / 3.0) { 24 } else { 4 };
                HandlerSpec::reply(Dur::ns(1000), SendSpec::new(msg.src, payload, TAG_RESP))
            }
            TAG_RESP => {
                self.responses += 1;
                HandlerSpec::compute(Dur::ns(700))
            }
            other => unreachable!("appbt got unexpected tag {other}"),
        }
    }

    fn ready_to_proceed(&self) -> bool {
        self.responses >= self.expected_responses
    }
}

/// Machine factory for appbt.
pub fn factory(nodes: u32, seed: u64, params: AppParams) -> impl FnMut(NodeId) -> Box<dyn Process> {
    move |id| {
        Box::new(SkeletonProcess::new(
            Appbt::new(id, nodes, seed, params),
            id,
            nodes,
        )) as Box<dyn Process>
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::MacroApp;
    use nisim_core::{MachineConfig, NiKind};

    #[test]
    fn grid_dims_are_balanced() {
        let sorted = |n: u32| {
            let (x, y, z) = grid_dims(n);
            let mut d = [x, y, z];
            d.sort_unstable();
            (d[0], d[1], d[2])
        };
        assert_eq!(sorted(16), (2, 2, 4));
        assert_eq!(sorted(8), (2, 2, 2));
        assert_eq!(sorted(27), (3, 3, 3));
        let (x, y, z) = grid_dims(12);
        assert_eq!(x * y * z, 12);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let dims = grid_dims(16);
        for a in 0..16u32 {
            for b in grid_neighbors(a, dims) {
                assert!(
                    grid_neighbors(b.0, dims).contains(&NodeId(a)),
                    "asymmetric: {a} -> {b:?}"
                );
            }
        }
    }

    #[test]
    fn message_sizes_match_table4_modes() {
        let cfg = MachineConfig::with_ni(NiKind::Cni32Qm).nodes(16);
        let r = crate::apps::run_app(MacroApp::Appbt, &cfg, &MacroApp::Appbt.default_params());
        let h = &r.msg_sizes;
        let f12 = h.fraction_of(12);
        let f32b = h.fraction_of(32);
        assert!(
            (0.55..=0.78).contains(&f12),
            "12 B fraction {f12} (paper: 0.67)"
        );
        assert!(
            (0.2..=0.45).contains(&f32b),
            "32 B fraction {f32b} (paper: 0.32)"
        );
    }

    #[test]
    fn all_nodes_exchange_with_neighbors_only() {
        // Communication volume: requests * 2 (req+resp) * nodes +
        // barrier traffic, all of it delivered.
        let cfg = MachineConfig::with_ni(NiKind::Ap3000).nodes(8);
        let p = AppParams {
            iterations: 2,
            intensity: 2,
            compute: nisim_engine::Dur::us(1),
        };
        let r = crate::apps::run_app(MacroApp::Appbt, &cfg, &p);
        // On a 2x2x2 grid +1/-1 coincide, so each node has 3 neighbours.
        let neighbours = grid_neighbors(0, grid_dims(8)).len() as u64;
        assert_eq!(neighbours, 3);
        let requests = 8 * 2 * (2 * neighbours); // nodes * iters * (intensity * neighbours)
        let barrier = 2 * 2 * 7; // iters * 2 messages * (nodes-1)
        assert_eq!(r.app_messages, requests * 2 + barrier);
    }
}
