//! `unstructured` — unstructured-mesh CFD skeleton.
//!
//! The paper's unstructured has a *static, single-producer
//! multiple-consumer* pattern: updates to each consumer are batched and
//! sent in bulk messages. Table 4 is unusual: one mode at 8 B (35 %) and
//! a broad 12–1812 B range of bulk sizes averaging 351 B (64 %).
//!
//! The skeleton gives every node a fixed set of consumers; per iteration
//! it streams two bulk batches (sizes drawn from a skewed distribution
//! averaging ≈351 B) plus one header-only notification per consumer.

use std::collections::VecDeque;

use nisim_core::process::{AppMessage, HandlerSpec, Process, SendSpec};
use nisim_engine::{Dur, SplitMix64, Time};
use nisim_net::NodeId;

use super::AppParams;
use crate::skeleton::{Skeleton, SkeletonProcess, Step};

/// Tag of a bulk batched update.
pub const TAG_BATCH: u32 = 70;
/// Tag of a header-only notification.
pub const TAG_NOTIFY: u32 = 71;
/// Consumers per producer (static mesh partition overlap).
pub const CONSUMERS: u32 = 3;

/// Per-node unstructured skeleton state.
pub struct Unstructured {
    consumers: Vec<NodeId>,
    params: AppParams,
    rng: SplitMix64,
    iters_left: u32,
    steps: VecDeque<Step>,
}

impl Unstructured {
    fn new(node: NodeId, nodes: u32, seed: u64, params: AppParams) -> Unstructured {
        // Static consumers: the mesh partition neighbours, fixed for the
        // whole run (offsets 1, 2 and 4 around the ring).
        let consumers = [1u32, 2, 4]
            .iter()
            .take(CONSUMERS.min(nodes - 1) as usize)
            .map(|&o| NodeId((node.0 + o) % nodes))
            .filter(|&n| n != node)
            .collect();
        Unstructured {
            consumers,
            params,
            rng: SplitMix64::new(seed ^ (0x05_7C + node.0 as u64)),
            iters_left: params.iterations,
            steps: VecDeque::new(),
        }
    }

    /// Bulk batch payload: skewed towards small batches with a long
    /// tail, averaging ≈343 B on the wire (the paper reports a 12–1812 B
    /// range with a 351 B average).
    fn batch_payload(&mut self) -> u64 {
        if self.rng.gen_bool(0.85) {
            // 4..=484 B payload (12..=492 B wire), uniform.
            4 + 8 * self.rng.gen_range(61)
        } else {
            // 500..=1796 B payload tail.
            500 + 8 * self.rng.gen_range(163)
        }
    }

    /// One iteration: mesh computation, then for each consumer a
    /// notification and two batched updates, then the iteration barrier.
    fn refill(&mut self) {
        let batches_per_consumer = 2 * self.params.intensity;
        self.steps.push_back(Step::Compute(self.params.compute));
        for i in 0..self.consumers.len() {
            let dst = self.consumers[i];
            self.steps
                .push_back(Step::Send(SendSpec::new(dst, 0, TAG_NOTIFY)));
            for _ in 0..batches_per_consumer {
                let payload = self.batch_payload();
                self.steps
                    .push_back(Step::Send(SendSpec::new(dst, payload, TAG_BATCH)));
            }
        }
        self.steps.push_back(Step::Barrier);
    }
}

impl Skeleton for Unstructured {
    fn next_step(&mut self, _now: Time) -> Step {
        if let Some(step) = self.steps.pop_front() {
            return step;
        }
        if self.iters_left == 0 {
            return Step::Done;
        }
        self.iters_left -= 1;
        self.refill();
        self.steps.pop_front().expect("refill produced steps")
    }

    fn on_app_message(&mut self, msg: &AppMessage, _now: Time) -> HandlerSpec {
        match msg.tag {
            TAG_BATCH => HandlerSpec::compute(Dur::ns(600 + msg.payload_bytes / 2)),
            TAG_NOTIFY => HandlerSpec::compute(Dur::ns(100)),
            other => unreachable!("unstructured got unexpected tag {other}"),
        }
    }
}

/// Machine factory for unstructured.
pub fn factory(nodes: u32, seed: u64, params: AppParams) -> impl FnMut(NodeId) -> Box<dyn Process> {
    move |id| {
        Box::new(SkeletonProcess::new(
            Unstructured::new(id, nodes, seed, params),
            id,
            nodes,
        )) as Box<dyn Process>
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::MacroApp;
    use nisim_core::{MachineConfig, NiKind};

    #[test]
    fn eight_byte_mode_and_bulk_range_match_table4() {
        let cfg = MachineConfig::with_ni(NiKind::Cni32Qm).nodes(16);
        let r = crate::apps::run_app(
            MacroApp::Unstructured,
            &cfg,
            &MacroApp::Unstructured.default_params(),
        );
        let h = &r.msg_sizes;
        // The 8 B notifications: one per 2*intensity batches, plus
        // barrier traffic, lands near the paper's 35 % at intensity 1;
        // with the default intensity the mode is present but smaller.
        assert!(h.fraction_of(8) > 0.05, "8 B fraction {}", h.fraction_of(8));
        // Bulk batches: mean over the non-8 B, non-barrier traffic near
        // the paper's 351 B average.
        let (mut bulk_sum, mut bulk_n) = (0f64, 0f64);
        for (size, count) in h.iter() {
            if size > 12 {
                bulk_sum += (size * count) as f64;
                bulk_n += count as f64;
            }
        }
        let avg = bulk_sum / bulk_n;
        assert!(
            (250.0..=460.0).contains(&avg),
            "bulk average {avg} (paper: 351)"
        );
    }

    #[test]
    fn consumers_are_static() {
        let p = MacroApp::Unstructured.default_params();
        let a = Unstructured::new(NodeId(5), 16, 1, p);
        assert_eq!(
            a.consumers,
            vec![NodeId(6), NodeId(7), NodeId(9)],
            "static ring-offset consumers"
        );
    }

    #[test]
    fn bulk_messages_use_block_bandwidth() {
        // Unstructured's large batches reward high-bandwidth NIs: the
        // AP3000-like NI must beat the CM-5-like NI clearly.
        let p = MacroApp::Unstructured.default_params();
        let cm5 = crate::apps::run_app(
            MacroApp::Unstructured,
            &MachineConfig::with_ni(NiKind::Cm5).nodes(16),
            &p,
        );
        let ap = crate::apps::run_app(
            MacroApp::Unstructured,
            &MachineConfig::with_ni(NiKind::Ap3000).nodes(16),
            &p,
        );
        assert!(
            cm5.elapsed.as_ns() as f64 > 1.1 * ap.elapsed.as_ns() as f64,
            "cm5 {:?} vs ap3000 {:?}",
            cm5.elapsed,
            ap.elapsed
        );
    }
}
