//! `dsmc` — discrete simulation Monte Carlo skeleton.
//!
//! The paper's dsmc moves particles between processors after every
//! iteration with fine-grain *one-way* active messages in a
//! producer/consumer pattern. Table 4: 12 B 45 %, 44 B 25 %, 140 B 26 %
//! — single particles, small batches, and larger batches.

use std::collections::VecDeque;

use nisim_core::process::{AppMessage, HandlerSpec, Process, SendSpec};
use nisim_engine::{Dur, SplitMix64, Time};
use nisim_net::NodeId;

use super::AppParams;
use crate::skeleton::{Skeleton, SkeletonProcess, Step};

/// Tag of a particle-batch message.
pub const TAG_PARTICLES: u32 = 30;

/// Per-node dsmc skeleton state.
pub struct Dsmc {
    me: NodeId,
    nodes: u32,
    params: AppParams,
    rng: SplitMix64,
    iters_left: u32,
    steps: VecDeque<Step>,
}

impl Dsmc {
    fn new(node: NodeId, nodes: u32, seed: u64, params: AppParams) -> Dsmc {
        Dsmc {
            me: node,
            nodes,
            params,
            rng: SplitMix64::new(seed ^ (0xD5_3C + node.0 as u64)),
            iters_left: params.iterations,
            steps: VecDeque::new(),
        }
    }

    /// Particle batches mostly go to spatial neighbours (ring-adjacent
    /// cells), occasionally further.
    fn pick_consumer(&mut self) -> NodeId {
        let hop = if self.rng.gen_bool(0.8) {
            1 + self.rng.gen_range(2)
        } else {
            1 + self.rng.gen_range((self.nodes - 1) as u64)
        };
        NodeId(((self.me.0 as u64 + hop) % self.nodes as u64) as u32)
    }

    /// Table 4 batch mix: 12 B (4 B payload) single particles 46 %, 44 B
    /// (36 B) small batches 26 %, 140 B (132 B) large batches 28 %.
    fn batch_payload(&mut self) -> u64 {
        let x = self.rng.gen_f64();
        if x < 0.46 {
            4
        } else if x < 0.72 {
            36
        } else {
            132
        }
    }

    /// One iteration: collision computation, then a migration phase that
    /// streams particle batches to consumers, then a barrier (the paper's
    /// per-iteration particle exchange).
    fn refill(&mut self) {
        let batches = self.params.intensity * 3;
        let chunk = Dur::ns(self.params.compute.as_ns() / 2);
        self.steps.push_back(Step::Compute(chunk));
        for _ in 0..batches {
            let dst = self.pick_consumer();
            let payload = self.batch_payload();
            self.steps
                .push_back(Step::Send(SendSpec::new(dst, payload, TAG_PARTICLES)));
        }
        self.steps.push_back(Step::Compute(chunk));
        self.steps.push_back(Step::Barrier);
    }
}

impl Skeleton for Dsmc {
    fn next_step(&mut self, _now: Time) -> Step {
        if let Some(step) = self.steps.pop_front() {
            return step;
        }
        if self.iters_left == 0 {
            return Step::Done;
        }
        self.iters_left -= 1;
        self.refill();
        self.steps.pop_front().expect("refill produced steps")
    }

    fn on_app_message(&mut self, msg: &AppMessage, _now: Time) -> HandlerSpec {
        debug_assert_eq!(msg.tag, TAG_PARTICLES);
        // Insert the received particles into local cells: cost scales
        // with batch size.
        HandlerSpec::compute(Dur::ns(800 + msg.payload_bytes * 2))
    }
}

/// Machine factory for dsmc.
pub fn factory(nodes: u32, seed: u64, params: AppParams) -> impl FnMut(NodeId) -> Box<dyn Process> {
    move |id| {
        Box::new(SkeletonProcess::new(
            Dsmc::new(id, nodes, seed, params),
            id,
            nodes,
        )) as Box<dyn Process>
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::MacroApp;
    use nisim_core::{MachineConfig, NiKind};

    #[test]
    fn message_sizes_match_table4_modes() {
        let cfg = MachineConfig::with_ni(NiKind::Cni32Qm).nodes(16);
        let r = crate::apps::run_app(MacroApp::Dsmc, &cfg, &MacroApp::Dsmc.default_params());
        let h = &r.msg_sizes;
        assert!(
            (0.35..=0.6).contains(&h.fraction_of(12)),
            "12 B fraction {} (paper: 0.45)",
            h.fraction_of(12)
        );
        assert!(
            (0.15..=0.35).contains(&h.fraction_of(44)),
            "44 B fraction {} (paper: 0.25)",
            h.fraction_of(44)
        );
        assert!(
            (0.15..=0.35).contains(&h.fraction_of(140)),
            "140 B fraction {} (paper: 0.26)",
            h.fraction_of(140)
        );
    }

    #[test]
    fn one_way_traffic_no_responses() {
        // dsmc is producer/consumer: messages sent equals batches plus
        // barrier traffic; nothing is echoed.
        let cfg = MachineConfig::with_ni(NiKind::Ap3000).nodes(8);
        let p = AppParams {
            iterations: 2,
            intensity: 4,
            compute: Dur::us(1),
        };
        let r = crate::apps::run_app(MacroApp::Dsmc, &cfg, &p);
        let batches = 8 * 2 * (4 * 3) as u64;
        let barrier = 2 * 2 * 7;
        assert_eq!(r.app_messages, batches + barrier);
    }
}
