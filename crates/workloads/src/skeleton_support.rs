//! Measurement helpers shared by the microbenchmarks.

use nisim_core::process::{Action, AppMessage, HandlerSpec, Process, SendSpec};
use nisim_core::{Machine, MachineConfig, TimeCategory};
use nisim_engine::{Dur, Time};
use nisim_net::NodeId;

struct Source {
    payload: u64,
    left: u32,
    done: bool,
}

impl Process for Source {
    fn next_action(&mut self, _now: Time) -> Action {
        if self.left == 0 {
            self.done = true;
            return Action::Done;
        }
        self.left -= 1;
        Action::Send(SendSpec::new(NodeId(1), self.payload, 0))
    }
    fn on_message(&mut self, _m: &AppMessage, _now: Time) -> HandlerSpec {
        HandlerSpec::empty()
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

struct Sink;

impl Process for Sink {
    fn next_action(&mut self, _now: Time) -> Action {
        Action::Done
    }
    fn on_message(&mut self, _m: &AppMessage, _now: Time) -> HandlerSpec {
        HandlerSpec::empty()
    }
    fn is_done(&self) -> bool {
        true
    }
}

/// Streams `count` messages of `payload` bytes from node 0 to node 1 and
/// returns `(sender data-transfer time, receiver data-transfer time,
/// messages)` — the per-side processor occupancy attributable to
/// messaging.
pub fn stream_occupancy(cfg: &MachineConfig, payload: u64) -> (Dur, Dur, u32) {
    let count = 100u32;
    let cfg = cfg.clone().nodes(2);
    let report = Machine::run(cfg, move |id| -> Box<dyn Process> {
        if id.0 == 0 {
            Box::new(Source {
                payload,
                left: count,
                done: false,
            })
        } else {
            Box::new(Sink)
        }
    });
    assert!(report.all_quiescent, "occupancy stream did not complete");
    (
        report.ledgers[0].get(TimeCategory::DataTransfer),
        report.ledgers[1].get(TimeCategory::DataTransfer),
        count,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisim_core::NiKind;

    #[test]
    fn occupancy_is_positive_and_scales() {
        let cfg = MachineConfig::with_ni(NiKind::Cm5);
        let (s8, r8, n) = stream_occupancy(&cfg, 8);
        let (s256, r256, _) = stream_occupancy(&cfg, 256);
        assert_eq!(n, 100);
        assert!(s8 > Dur::ZERO && r8 > Dur::ZERO);
        assert!(s256 > s8 && r256 > r8);
    }
}
