//! Connection-count sweep: the QP-state-capacity study.
//!
//! Node 0 streams a fixed message sequence to node 1 as fast as flow
//! control allows, labelling message `i` with connection `i % E + 1` for
//! `E` simulated logical endpoints. The destination sequence is the same
//! for every `E`, so an NI that ignores connections (URMA, and every
//! Table 2 design) produces a byte-identical run at any endpoint count —
//! the flat curve. A connection-aware NI with a bounded QP-state cache
//! (RDMA_QP) starts thrashing once `E` exceeds
//! [`MachineConfig::qp_cache_entries`]: round-robin reuse against an LRU
//! cache gives a 0% hit rate past capacity, and every fragment pays the
//! context fetch on both sides — the state-capacity cliff.

use nisim_core::process::{Action, AppMessage, HandlerSpec, Process, SendSpec};
use nisim_core::{Machine, MachineConfig};
use nisim_engine::metrics::MetricsConfig;
use nisim_engine::Time;
use nisim_net::NodeId;

const TAG_SWEEP: u32 = 5;

/// Result of one endpoint count in the connection sweep.
#[derive(Clone, Debug)]
pub struct ConnSweepResult {
    /// Simulated logical endpoints (distinct connection labels).
    pub endpoints: u32,
    /// Median end-to-end message latency, nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile end-to-end message latency, nanoseconds.
    pub p99_ns: f64,
    /// Mean end-to-end message latency, nanoseconds.
    pub mean_ns: f64,
    /// Messages measured.
    pub messages: u64,
}

struct ConnStreamer {
    endpoints: u32,
    payload: u64,
    sent: u32,
    count: u32,
    done: bool,
}

impl Process for ConnStreamer {
    fn next_action(&mut self, _now: Time) -> Action {
        if self.sent == self.count {
            self.done = true;
            return Action::Done;
        }
        let conn = self.sent % self.endpoints + 1;
        self.sent += 1;
        Action::Send(SendSpec::new(NodeId(1), self.payload, TAG_SWEEP).on_conn(conn))
    }

    fn on_message(&mut self, _msg: &AppMessage, _now: Time) -> HandlerSpec {
        HandlerSpec::empty()
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

struct ConnSink;

impl Process for ConnSink {
    fn next_action(&mut self, _now: Time) -> Action {
        Action::Done
    }

    fn on_message(&mut self, msg: &AppMessage, _now: Time) -> HandlerSpec {
        debug_assert_eq!(msg.tag, TAG_SWEEP);
        HandlerSpec::empty()
    }

    fn is_done(&self) -> bool {
        true
    }
}

/// Runs the connection sweep at one endpoint count: `count` messages of
/// `payload` bytes, connections assigned round-robin over `endpoints`.
///
/// # Panics
///
/// Panics if `endpoints` is zero or the stream fails to complete.
pub fn measure_conn_sweep(
    cfg: &MachineConfig,
    endpoints: u32,
    count: u32,
    payload: u64,
) -> ConnSweepResult {
    measure_conn_sweep_with_report(cfg, endpoints, count, payload).0
}

/// Like [`measure_conn_sweep`], additionally returning the full
/// [`MachineReport`](nisim_core::MachineReport) of the measurement run.
///
/// # Panics
///
/// Panics if `endpoints` is zero or the stream fails to complete.
pub fn measure_conn_sweep_with_report(
    cfg: &MachineConfig,
    endpoints: u32,
    count: u32,
    payload: u64,
) -> (ConnSweepResult, nisim_core::MachineReport) {
    assert!(endpoints >= 1, "the sweep needs at least one endpoint");
    let cfg = cfg.clone().nodes(2).metrics(MetricsConfig::enabled());
    let report = Machine::run(cfg, move |id| -> Box<dyn Process> {
        if id.0 == 0 {
            Box::new(ConnStreamer {
                endpoints,
                payload,
                sent: 0,
                count,
                done: false,
            })
        } else {
            Box::new(ConnSink)
        }
    });
    assert!(report.all_quiescent, "sweep did not complete: {report:?}");
    assert_eq!(report.app_messages, count as u64);
    let rtt = report
        .breakdown
        .as_ref()
        .expect("metrics were enabled")
        .msg_rtt
        .percentiles();
    let result = ConnSweepResult {
        endpoints,
        p50_ns: rtt.p50,
        p99_ns: rtt.p99,
        mean_ns: report.msg_latency.mean(),
        messages: report.app_messages,
    };
    (result, report)
}

/// The endpoint counts of the standard sweep: 4 to 1024, straddling the
/// default 64-entry QP cache.
pub const SWEEP_ENDPOINTS: [u32; 5] = [4, 16, 64, 256, 1024];

#[cfg(test)]
mod tests {
    use super::*;
    use nisim_core::NiKind;

    #[test]
    fn urma_is_flat_across_endpoint_counts() {
        let cfg = MachineConfig::with_ni(NiKind::Urma);
        let few = measure_conn_sweep(&cfg, 4, 120, 64);
        let many = measure_conn_sweep(&cfg, 1024, 120, 64);
        // Connectionless: the runs are identical, not merely close.
        assert_eq!(few.p99_ns, many.p99_ns);
        assert_eq!(few.mean_ns, many.mean_ns);
    }

    #[test]
    fn rdma_qp_falls_off_the_state_capacity_cliff() {
        let cfg = MachineConfig::with_ni(NiKind::RdmaQp);
        let few = measure_conn_sweep(&cfg, 4, 512, 64);
        let many = measure_conn_sweep(&cfg, 1024, 512, 64);
        assert!(
            many.p99_ns >= 2.0 * few.p99_ns,
            "thrashing QP cache must at least double p99: {} vs {}",
            many.p99_ns,
            few.p99_ns
        );
    }

    #[test]
    fn cliff_sits_past_the_configured_capacity() {
        // With a roomier cache the same endpoint count stays on the flat
        // part of the curve.
        let small = measure_conn_sweep(
            &MachineConfig::with_ni(NiKind::RdmaQp).qp_cache_entries(16),
            256,
            768,
            64,
        );
        let large = measure_conn_sweep(
            &MachineConfig::with_ni(NiKind::RdmaQp).qp_cache_entries(1024),
            256,
            768,
            64,
        );
        assert!(
            small.mean_ns > large.mean_ns,
            "under-provisioned cache must cost more: {} vs {}",
            small.mean_ns,
            large.mean_ns
        );
    }
}
