//! The §6.1 microbenchmarks: round-trip latency and bandwidth (Table 5).

pub mod bandwidth;
pub mod logp;
pub mod pingpong;
