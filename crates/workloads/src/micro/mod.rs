//! The §6.1 microbenchmarks: round-trip latency and bandwidth (Table 5),
//! plus the modern-NI studies (connection-count sweep, strided
//! scatter-gather exchange).

pub mod bandwidth;
pub mod connsweep;
pub mod logp;
pub mod pingpong;
pub mod strided;
