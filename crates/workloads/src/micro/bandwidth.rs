//! Process-to-process streaming bandwidth (Table 5, right half).
//!
//! Node 0 streams `count` messages of `payload` bytes to node 1 as fast
//! as flow control allows; node 1 consumes them. Bandwidth is measured
//! over the steady-state window (the first few messages are warm-up), as
//! payload megabytes per second at the *receiver* — the paper's
//! process-to-process definition.

use std::sync::{Arc, Mutex};

use nisim_core::process::{Action, AppMessage, HandlerSpec, Process, SendSpec};
use nisim_core::{Machine, MachineConfig, NiKind};
use nisim_engine::Time;
use nisim_net::{BufferCount, NodeId};

const TAG_STREAM: u32 = 3;

/// Result of a bandwidth measurement.
#[derive(Clone, Debug)]
pub struct BandwidthResult {
    /// Payload size streamed.
    pub payload_bytes: u64,
    /// Steady-state payload bandwidth in megabytes per second.
    pub mb_per_s: f64,
    /// Messages measured (after warm-up).
    pub messages: u64,
}

struct Streamer {
    payload: u64,
    left: u32,
    done: bool,
}

impl Process for Streamer {
    fn next_action(&mut self, _now: Time) -> Action {
        if self.left == 0 {
            self.done = true;
            return Action::Done;
        }
        self.left -= 1;
        Action::Send(SendSpec::new(NodeId(1), self.payload, TAG_STREAM))
    }

    fn on_message(&mut self, _msg: &AppMessage, _now: Time) -> HandlerSpec {
        HandlerSpec::empty()
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

#[derive(Clone, Debug, Default)]
struct SinkLog {
    /// Completion time of each received message, in arrival order.
    times: Vec<Time>,
}

struct Sink {
    // Arc so the caller can read the log after the run; only the sink
    // node's process ever touches it during simulation.
    log: Arc<Mutex<SinkLog>>,
}

impl Process for Sink {
    fn next_action(&mut self, _now: Time) -> Action {
        Action::Done
    }

    fn on_message(&mut self, msg: &AppMessage, now: Time) -> HandlerSpec {
        debug_assert_eq!(msg.tag, TAG_STREAM);
        self.log.lock().unwrap().times.push(now);
        HandlerSpec::empty()
    }

    fn is_done(&self) -> bool {
        true
    }
}

/// Measures steady-state streaming bandwidth under `cfg` for
/// `payload_bytes` messages.
///
/// # Panics
///
/// Panics if the stream fails to complete.
pub fn measure_bandwidth(cfg: &MachineConfig, payload_bytes: u64) -> BandwidthResult {
    measure_bandwidth_with_report(cfg, payload_bytes).0
}

/// Like [`measure_bandwidth`], additionally returning the full
/// [`MachineReport`](nisim_core::MachineReport) of the measurement run.
///
/// # Panics
///
/// Panics if the stream fails to complete.
pub fn measure_bandwidth_with_report(
    cfg: &MachineConfig,
    payload_bytes: u64,
) -> (BandwidthResult, nisim_core::MachineReport) {
    // Enough messages that the warm-up window covers the first lap of
    // the coherent NIs' queue regions (cold BusRdX fills).
    let count: u32 = 170;
    let warmup: usize = 70;
    let log = Arc::new(Mutex::new(SinkLog::default()));
    let log_factory = log.clone();
    let cfg = cfg.clone().nodes(2);
    let payload = payload_bytes;
    let report = Machine::run(cfg, move |id| -> Box<dyn Process> {
        if id.0 == 0 {
            Box::new(Streamer {
                payload,
                left: count,
                done: false,
            })
        } else {
            Box::new(Sink {
                log: log_factory.clone(),
            })
        }
    });
    assert!(report.all_quiescent, "stream did not complete: {report:?}");
    let log = log.lock().unwrap();
    assert_eq!(log.times.len(), count as usize);
    let window = &log.times[warmup..];
    let elapsed = *window.last().expect("window non-empty") - window[0];
    let messages = (window.len() - 1) as u64;
    let bytes = messages * payload_bytes;
    let result = BandwidthResult {
        payload_bytes,
        mb_per_s: bytes as f64 / elapsed.as_ns() as f64 * 1_000.0,
        messages,
    };
    (result, report)
}

/// Convenience: bandwidth for one NI kind at Table 5 defaults (8 flow
/// control buffers; pure UDMA for the UDMA-based NI).
pub fn bandwidth_for(kind: NiKind, payload_bytes: u64) -> BandwidthResult {
    let mut cfg = MachineConfig::with_ni(kind).flow_buffers(BufferCount::Finite(8));
    if kind == NiKind::Udma {
        cfg.costs = cfg.costs.pure_udma();
    }
    measure_bandwidth(&cfg, payload_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_is_positive_and_grows_with_payload() {
        let small = bandwidth_for(NiKind::Ap3000, 8);
        let large = bandwidth_for(NiKind::Ap3000, 256);
        assert!(small.mb_per_s > 0.0);
        assert!(large.mb_per_s > small.mb_per_s * 2.0);
    }

    #[test]
    fn block_ni_beats_word_ni_at_large_payloads() {
        let cm5 = bandwidth_for(NiKind::Cm5, 4096);
        let ap = bandwidth_for(NiKind::Ap3000, 4096);
        assert!(
            ap.mb_per_s > 1.5 * cm5.mb_per_s,
            "ap {} vs cm5 {}",
            ap.mb_per_s,
            cm5.mb_per_s
        );
    }

    #[test]
    fn throttling_helps_cni32qm_at_large_payloads() {
        let plain = bandwidth_for(NiKind::Cni32Qm, 4096);
        let throttled = bandwidth_for(NiKind::Cni32QmThrottle, 4096);
        assert!(
            throttled.mb_per_s > plain.mb_per_s,
            "throttled {} vs plain {}",
            throttled.mb_per_s,
            plain.mb_per_s
        );
    }
}
