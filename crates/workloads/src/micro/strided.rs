//! Strided matrix-row exchange: the scatter-gather DMA workload.
//!
//! Two nodes exchange `rows` rows of a row-major matrix where only a
//! `row_bytes`-wide column slice of each row is needed — the classic
//! non-contiguous halo exchange that descriptor-driven NICs (sPIN, arxiv
//! 1908.08590) accelerate. Two software strategies:
//!
//! * **Gathered** — one send carries all rows; the tag encodes the
//!   element geometry ([`encode_gather_tag`]) so a scatter-gather NI
//!   walks the strided elements itself. One software send path total.
//! * **Fragment-per-element** — one send *per row*, the only option on
//!   NIs without descriptor support. Pays the full software send path,
//!   per-message headers and per-message handler dispatch `rows` times.
//!
//! The golden locks in that SGDMA with gathered descriptors beats the
//! fragment-per-element strategy on the same machine.

use nisim_core::ni::sgdma::encode_gather_tag;
use nisim_core::process::{Action, AppMessage, HandlerSpec, Process, SendSpec};
use nisim_core::{Machine, MachineConfig};
use nisim_engine::Time;
use nisim_net::NodeId;

/// Result of one strided-exchange run.
#[derive(Clone, Debug)]
pub struct StridedResult {
    /// Total simulated time to complete every exchange round.
    pub elapsed_ns: u64,
    /// Application messages delivered.
    pub messages: u64,
    /// Network fragments injected.
    pub fragments: u64,
}

/// How the strided rows are pushed through the NI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StridedStrategy {
    /// One descriptor-driven send for all rows (gather tag).
    Gathered,
    /// One plain send per row.
    FragmentPerElement,
}

struct RowSender {
    strategy: StridedStrategy,
    rows: u32,
    row_bytes: u64,
    rounds: u32,
    /// Sends left in the current round.
    pending: u32,
    done: bool,
}

impl RowSender {
    fn next_round(&mut self) -> bool {
        if self.rounds == 0 {
            return false;
        }
        self.rounds -= 1;
        self.pending = match self.strategy {
            StridedStrategy::Gathered => 1,
            StridedStrategy::FragmentPerElement => self.rows,
        };
        true
    }
}

impl Process for RowSender {
    fn next_action(&mut self, _now: Time) -> Action {
        if self.pending == 0 && !self.next_round() {
            self.done = true;
            return Action::Done;
        }
        self.pending -= 1;
        let spec = match self.strategy {
            StridedStrategy::Gathered => SendSpec::new(
                NodeId(1),
                self.rows as u64 * self.row_bytes,
                encode_gather_tag(self.rows, self.row_bytes as u32),
            ),
            StridedStrategy::FragmentPerElement => SendSpec::new(NodeId(1), self.row_bytes, 0),
        };
        Action::Send(spec)
    }

    fn on_message(&mut self, _msg: &AppMessage, _now: Time) -> HandlerSpec {
        HandlerSpec::empty()
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

struct RowSink;

impl Process for RowSink {
    fn next_action(&mut self, _now: Time) -> Action {
        Action::Done
    }

    fn on_message(&mut self, _msg: &AppMessage, _now: Time) -> HandlerSpec {
        HandlerSpec::empty()
    }

    fn is_done(&self) -> bool {
        true
    }
}

/// Runs `rounds` strided exchanges of `rows` x `row_bytes` under `cfg`.
///
/// # Panics
///
/// Panics if the geometry exceeds the gather-tag fields (`rows` above
/// 0x3FFF, `row_bytes` above 0xFFFF) or the run fails to complete.
pub fn measure_strided(
    cfg: &MachineConfig,
    strategy: StridedStrategy,
    rows: u32,
    row_bytes: u64,
    rounds: u32,
) -> StridedResult {
    measure_strided_with_report(cfg, strategy, rows, row_bytes, rounds).0
}

/// Like [`measure_strided`], additionally returning the full
/// [`MachineReport`](nisim_core::MachineReport) of the run.
///
/// # Panics
///
/// Panics under the same conditions as [`measure_strided`].
pub fn measure_strided_with_report(
    cfg: &MachineConfig,
    strategy: StridedStrategy,
    rows: u32,
    row_bytes: u64,
    rounds: u32,
) -> (StridedResult, nisim_core::MachineReport) {
    assert!((1..=0x3FFF).contains(&rows), "rows must fit the gather tag");
    assert!(
        (1..=0xFFFF).contains(&row_bytes),
        "row_bytes must fit the gather tag"
    );
    let cfg = cfg.clone().nodes(2);
    let report = Machine::run(cfg, move |id| -> Box<dyn Process> {
        if id.0 == 0 {
            Box::new(RowSender {
                strategy,
                rows,
                row_bytes,
                rounds,
                pending: 0,
                done: false,
            })
        } else {
            Box::new(RowSink)
        }
    });
    assert!(
        report.all_quiescent,
        "exchange did not complete: {report:?}"
    );
    let result = StridedResult {
        elapsed_ns: report.elapsed.as_ns(),
        messages: report.app_messages,
        fragments: report.fragments_sent,
    };
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisim_core::NiKind;

    #[test]
    fn gather_beats_fragment_per_element_on_sgdma() {
        let cfg = MachineConfig::with_ni(NiKind::Sgdma);
        let gathered = measure_strided(&cfg, StridedStrategy::Gathered, 16, 15, 8);
        let per_row = measure_strided(&cfg, StridedStrategy::FragmentPerElement, 16, 15, 8);
        assert!(
            gathered.elapsed_ns < per_row.elapsed_ns,
            "gather {} vs per-row {}",
            gathered.elapsed_ns,
            per_row.elapsed_ns
        );
        assert!(gathered.fragments < per_row.fragments);
        assert_eq!(per_row.messages, 16 * 8);
    }

    #[test]
    fn geometry_outside_the_tag_is_rejected() {
        let cfg = MachineConfig::with_ni(NiKind::Sgdma);
        let r = std::panic::catch_unwind(|| {
            measure_strided(&cfg, StridedStrategy::Gathered, 0x8000, 8, 1)
        });
        assert!(r.is_err(), "oversized row count must be refused");
    }
}
