//! LogP characterisation of the NIs (§6.1 of the paper).
//!
//! The paper declines to report LogP numbers because the model's latency
//! (L) and overhead (o) components do not capture the same thing for all
//! NI designs — for CNIs, data transfer rides in L (the NI moves it),
//! while for CM-5-class NIs it lands in o (the processor moves it). This
//! module measures exactly that redistribution, which *is* the paper's
//! "degree of processor involvement" parameter made quantitative:
//!
//! * `o_send` / `o_recv` — processor occupancy per message on each side,
//! * `l` — the remaining end-to-end latency not covered by occupancy,
//! * `g` — the steady-state gap between message completions (1/rate).

use nisim_core::{MachineConfig, NiKind};
use nisim_net::BufferCount;

use super::bandwidth::measure_bandwidth_with_report;
use super::pingpong::measure_round_trip;
use crate::skeleton_support::stream_occupancy;

/// LogP-style characterisation of one NI at one payload size.
#[derive(Clone, Debug)]
pub struct LogPResult {
    /// The NI characterised.
    pub kind: NiKind,
    /// Payload size (bytes).
    pub payload_bytes: u64,
    /// Sending-processor occupancy per message (µs).
    pub o_send_us: f64,
    /// Receiving-processor occupancy per message (µs).
    pub o_recv_us: f64,
    /// One-way latency not attributable to processor occupancy (µs).
    pub l_us: f64,
    /// Steady-state gap between message completions (µs).
    pub g_us: f64,
}

impl LogPResult {
    /// Fraction of the one-way time the processor is occupied — the
    /// paper's "degree of processor involvement" made a number.
    pub fn involvement(&self) -> f64 {
        let one_way = self.l_us + (self.o_send_us + self.o_recv_us) / 2.0;
        if one_way <= 0.0 {
            return 0.0;
        }
        ((self.o_send_us + self.o_recv_us) / 2.0) / one_way
    }
}

/// Measures the LogP-style parameters of `kind` for `payload_bytes`
/// messages at the Table 5 configuration.
pub fn measure_logp(kind: NiKind, payload_bytes: u64) -> LogPResult {
    measure_logp_with_report(kind, payload_bytes).0
}

/// Like [`measure_logp`], additionally returning the
/// [`MachineReport`](nisim_core::MachineReport) of the bandwidth leg
/// (the run whose ledger carries the steady-state transfer accounting).
pub fn measure_logp_with_report(
    kind: NiKind,
    payload_bytes: u64,
) -> (LogPResult, nisim_core::MachineReport) {
    let mut cfg = MachineConfig::with_ni(kind).flow_buffers(BufferCount::Finite(8));
    if kind == NiKind::Udma {
        cfg.costs = cfg.costs.pure_udma();
    }
    // Round trip bounds L + o terms; occupancies come from the ledgers of
    // a unidirectional stream.
    let rtt = measure_round_trip(&cfg, payload_bytes).mean_us;
    let (o_send, o_recv, msgs) = stream_occupancy(&cfg, payload_bytes);
    let o_send_us = o_send.as_ns() as f64 / msgs as f64 / 1_000.0;
    let o_recv_us = o_recv.as_ns() as f64 / msgs as f64 / 1_000.0;
    let (bw, report) = measure_bandwidth_with_report(&cfg, payload_bytes);
    // MB/s is bytes per microsecond, so the inter-message gap in µs is
    // simply payload / bandwidth.
    let g_us = payload_bytes as f64 / bw.mb_per_s;
    let l_us = (rtt / 2.0 - (o_send_us + o_recv_us) / 2.0).max(0.0);
    let result = LogPResult {
        kind,
        payload_bytes,
        o_send_us,
        o_recv_us,
        l_us,
        g_us,
    };
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_managed_nis_have_higher_occupancy() {
        // §2.2.2/§6.1: NIs that require processor involvement for data
        // transfer show higher o than the NI-managed designs.
        let cm5 = measure_logp(NiKind::Cm5, 64);
        let cni = measure_logp(NiKind::Cni32Qm, 64);
        assert!(
            cm5.o_send_us + cm5.o_recv_us > 1.5 * (cni.o_send_us + cni.o_recv_us),
            "cm5 o {} vs cni o {}",
            cm5.o_send_us + cm5.o_recv_us,
            cni.o_send_us + cni.o_recv_us
        );
        assert!(cm5.involvement() > cni.involvement());
    }

    #[test]
    fn occupancy_moves_into_latency_for_ni_managed_designs() {
        // The exact effect that makes LogP ambiguous in the paper: for
        // the coherent NIs the transfer time shows up in L, not o.
        let cni = measure_logp(NiKind::Cni32Qm, 256);
        assert!(cni.l_us > cni.o_send_us, "{cni:?}");
    }

    #[test]
    fn gap_tracks_bandwidth() {
        let r = measure_logp(NiKind::Ap3000, 256);
        assert!(r.g_us > 0.0 && r.g_us < 10.0);
    }
}
