//! Process-to-process round-trip latency (Table 5, left half).
//!
//! Node 0 sends a `payload`-byte message to node 1, whose handler echoes
//! a message of the same payload; the round trip ends when node 0's
//! handler runs. Timing starts when the sending *process* issues the send
//! (so the messaging-software costs are included — the paper's numbers
//! are process-to-process) and a few warm-up round trips precede the
//! measurement so caches and queue laps reach steady state.

use std::sync::{Arc, Mutex};

use nisim_core::process::{Action, AppMessage, HandlerSpec, Process, SendSpec};
use nisim_core::{Machine, MachineConfig, NiKind};
use nisim_engine::stats::Summary;
use nisim_engine::Time;
use nisim_net::{BufferCount, NodeId};

const TAG_PING: u32 = 1;
const TAG_PONG: u32 = 2;

/// Result of a round-trip measurement.
#[derive(Clone, Debug)]
pub struct RoundTripResult {
    /// Payload size measured.
    pub payload_bytes: u64,
    /// Mean round-trip latency in microseconds.
    pub mean_us: f64,
    /// Fastest observed round trip (µs).
    pub min_us: f64,
    /// Slowest observed round trip (µs).
    pub max_us: f64,
    /// Round trips measured (after warm-up).
    pub samples: u64,
}

struct Pinger {
    payload: u64,
    warmup_left: u32,
    measured_left: u32,
    awaiting_pong: bool,
    sent_at: Time,
    // Arc so the caller can read the samples after the run; only the
    // pinger node's process ever touches it during simulation.
    rtts: Arc<Mutex<Summary>>,
    done: bool,
}

impl Process for Pinger {
    fn next_action(&mut self, now: Time) -> Action {
        if self.awaiting_pong {
            return Action::Wait;
        }
        if self.warmup_left == 0 && self.measured_left == 0 {
            self.done = true;
            return Action::Done;
        }
        self.awaiting_pong = true;
        self.sent_at = now;
        Action::Send(SendSpec::new(NodeId(1), self.payload, TAG_PING))
    }

    fn on_message(&mut self, msg: &AppMessage, now: Time) -> HandlerSpec {
        debug_assert_eq!(msg.tag, TAG_PONG);
        self.awaiting_pong = false;
        if self.warmup_left > 0 {
            self.warmup_left -= 1;
        } else {
            self.measured_left -= 1;
            self.rtts
                .lock()
                .unwrap()
                .record((now - self.sent_at).as_ns() as f64);
        }
        HandlerSpec::empty()
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

struct Ponger {
    payload: u64,
}

impl Process for Ponger {
    fn next_action(&mut self, _now: Time) -> Action {
        Action::Done
    }

    fn on_message(&mut self, msg: &AppMessage, _now: Time) -> HandlerSpec {
        debug_assert_eq!(msg.tag, TAG_PING);
        HandlerSpec::reply(
            nisim_engine::Dur::ZERO,
            SendSpec::new(msg.src, self.payload, TAG_PONG),
        )
    }

    fn is_done(&self) -> bool {
        true
    }
}

/// Measures the process-to-process round-trip latency of `ni` for
/// `payload_bytes` messages, with the Table 5 configuration (8 flow
/// control buffers) unless overridden in `cfg`.
///
/// # Panics
///
/// Panics if the simulation fails to complete (a protocol bug).
pub fn measure_round_trip(cfg: &MachineConfig, payload_bytes: u64) -> RoundTripResult {
    measure_round_trip_with_report(cfg, payload_bytes).0
}

/// Like [`measure_round_trip`], additionally returning the full
/// [`MachineReport`](nisim_core::MachineReport) of the measurement run —
/// sweep records keep the per-component accounting and counters.
///
/// # Panics
///
/// Panics if the simulation fails to complete (a protocol bug).
pub fn measure_round_trip_with_report(
    cfg: &MachineConfig,
    payload_bytes: u64,
) -> (RoundTripResult, nisim_core::MachineReport) {
    let rtts = Arc::new(Mutex::new(Summary::new()));
    let rtts_factory = rtts.clone();
    let cfg = cfg.clone().nodes(2);
    let payload = payload_bytes;
    let report = Machine::run(cfg, move |id| -> Box<dyn Process> {
        if id.0 == 0 {
            Box::new(Pinger {
                payload,
                // Queues start pre-warmed; a short warm-up settles the
                // remaining state (block-buffer residency, NI caches).
                warmup_left: 32,
                measured_left: 32,
                awaiting_pong: false,
                sent_at: Time::ZERO,
                rtts: rtts_factory.clone(),
                done: false,
            })
        } else {
            Box::new(Ponger { payload })
        }
    });
    assert!(
        report.all_quiescent,
        "ping-pong did not complete: {report:?}"
    );
    let s = rtts.lock().unwrap();
    (
        RoundTripResult {
            payload_bytes,
            mean_us: s.mean() / 1_000.0,
            min_us: s.min() / 1_000.0,
            max_us: s.max() / 1_000.0,
            samples: s.count(),
        },
        report,
    )
}

/// Convenience: round-trip latency for one NI kind at Table 5 defaults.
pub fn round_trip_for(kind: NiKind, payload_bytes: u64) -> RoundTripResult {
    let mut cfg = MachineConfig::with_ni(kind).flow_buffers(BufferCount::Finite(8));
    if kind == NiKind::Udma {
        // Table 5 characterises the pure UDMA mechanism.
        cfg.costs = cfg.costs.pure_udma();
    }
    measure_round_trip(&cfg, payload_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_the_requested_number_of_samples() {
        let r = round_trip_for(NiKind::Cm5, 8);
        assert_eq!(r.samples, 32);
        assert!(r.mean_us > 0.0);
        assert!(r.min_us <= r.mean_us && r.mean_us <= r.max_us);
    }

    #[test]
    fn latency_grows_with_payload() {
        let small = round_trip_for(NiKind::Cm5, 8);
        let large = round_trip_for(NiKind::Cm5, 256);
        assert!(large.mean_us > small.mean_us * 2.0);
    }

    #[test]
    fn steady_state_is_stable() {
        // After warm-up, round trips should be essentially constant.
        let r = round_trip_for(NiKind::Cni32Qm, 64);
        assert!(r.max_us - r.min_us < 0.25 * r.mean_us, "noisy: {r:?}");
    }
}
