//! Parameterised synthetic traffic.
//!
//! The macrobenchmarks fix their communication patterns; this generator
//! exposes the knobs — offered load, message-size mix, destination
//! locality — for controlled studies. It is used by the harness to
//! revisit the Mackenzie et al. claim the paper discusses in §7 (that
//! overflow buffering beyond the NI is rare for realistic loads) and to
//! find each NI's saturation point.

use nisim_core::process::{AppMessage, HandlerSpec, Process, SendSpec};
use nisim_core::{Machine, MachineConfig, MachineReport};
use nisim_engine::{Dur, SplitMix64, Time};
use nisim_net::NodeId;

/// Destination selection policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Locality {
    /// Uniformly random over the other nodes.
    Uniform,
    /// The next `hops` ring neighbours, uniformly.
    Ring(u32),
    /// With probability `p`, node 0 (a hot spot); otherwise uniform.
    Hotspot(f64),
}

/// Synthetic traffic parameters.
#[derive(Clone, Debug)]
pub struct SyntheticParams {
    /// Messages each node sends.
    pub messages_per_node: u32,
    /// Mean computation between sends (exponential-ish jitter around it).
    pub mean_gap: Dur,
    /// Payload sizes and their weights.
    pub size_mix: Vec<(u64, f64)>,
    /// Destination policy.
    pub locality: Locality,
    /// Handler computation per received message.
    pub handler_compute: Dur,
}

impl Default for SyntheticParams {
    /// A fine-grain, mildly localised mix reminiscent of Table 4.
    fn default() -> Self {
        SyntheticParams {
            messages_per_node: 100,
            mean_gap: Dur::us(2),
            size_mix: vec![(4, 0.6), (32, 0.25), (132, 0.15)],
            locality: Locality::Ring(3),
            handler_compute: Dur::ns(300),
        }
    }
}

struct SyntheticProcess {
    me: NodeId,
    nodes: u32,
    params: SyntheticParams,
    rng: SplitMix64,
    sent: u32,
    gap_next: bool,
}

impl SyntheticProcess {
    fn pick_dst(&mut self) -> NodeId {
        let uniform = |rng: &mut SplitMix64, me: NodeId, nodes: u32| loop {
            let n = NodeId(rng.gen_range(nodes as u64) as u32);
            if n != me {
                return n;
            }
        };
        match self.params.locality {
            Locality::Uniform => uniform(&mut self.rng, self.me, self.nodes),
            Locality::Ring(hops) => {
                let h = 1 + self.rng.gen_range(hops.max(1) as u64);
                NodeId(((self.me.0 as u64 + h) % self.nodes as u64) as u32)
            }
            Locality::Hotspot(p) => {
                if self.me.0 != 0 && self.rng.gen_bool(p) {
                    NodeId(0)
                } else {
                    uniform(&mut self.rng, self.me, self.nodes)
                }
            }
        }
    }

    fn pick_payload(&mut self) -> u64 {
        let weights: Vec<f64> = self.params.size_mix.iter().map(|&(_, w)| w).collect();
        let i = self.rng.choose_weighted(&weights);
        self.params.size_mix[i].0
    }

    fn pick_gap(&mut self) -> Dur {
        // 0.5x .. 1.5x of the mean, uniformly: enough jitter to
        // desynchronise nodes without heavy tails.
        let mean = self.params.mean_gap.as_ns().max(1);
        Dur::ns(mean / 2 + self.rng.gen_range(mean))
    }
}

impl Process for SyntheticProcess {
    fn next_action(&mut self, _now: Time) -> nisim_core::process::Action {
        use nisim_core::process::Action;
        if self.sent >= self.params.messages_per_node {
            return Action::Done;
        }
        if self.gap_next {
            self.gap_next = false;
            return Action::Compute(self.pick_gap());
        }
        self.sent += 1;
        self.gap_next = true;
        let dst = self.pick_dst();
        let payload = self.pick_payload();
        Action::Send(SendSpec::new(dst, payload, 0))
    }

    fn on_message(&mut self, _msg: &AppMessage, _now: Time) -> HandlerSpec {
        HandlerSpec::compute(self.params.handler_compute)
    }

    fn is_done(&self) -> bool {
        self.sent >= self.params.messages_per_node
    }
}

/// Runs synthetic traffic under `cfg`.
///
/// # Panics
///
/// Panics if the run fails to reach quiescence.
pub fn run_synthetic(cfg: &MachineConfig, params: &SyntheticParams) -> MachineReport {
    let cfg = cfg.clone();
    let nodes = cfg.nodes;
    let seed = cfg.seed;
    let params = params.clone();
    let report = Machine::run(cfg, move |id| -> Box<dyn Process> {
        Box::new(SyntheticProcess {
            me: id,
            nodes,
            params: params.clone(),
            rng: SplitMix64::new(seed ^ (0x0517_E71C + id.0 as u64)),
            sent: 0,
            gap_next: true,
        })
    });
    assert!(report.all_quiescent, "synthetic run did not complete");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisim_core::{NiKind, TimeCategory};
    use nisim_net::BufferCount;

    #[test]
    fn delivers_every_message() {
        let cfg = MachineConfig::with_ni(NiKind::Ap3000).nodes(8);
        let p = SyntheticParams::default();
        let r = run_synthetic(&cfg, &p);
        assert_eq!(r.app_messages, 8 * p.messages_per_node as u64);
    }

    #[test]
    fn hotspot_traffic_stresses_buffering() {
        let mut p = SyntheticParams {
            mean_gap: Dur::ns(600),
            ..SyntheticParams::default()
        };
        let cfg = MachineConfig::with_ni(NiKind::Cm5)
            .nodes(16)
            .flow_buffers(BufferCount::Finite(2));
        p.locality = Locality::Uniform;
        let spread = run_synthetic(&cfg, &p);
        p.locality = Locality::Hotspot(0.8);
        let hot = run_synthetic(&cfg, &p);
        assert!(
            hot.recv_rejects > 2 * spread.recv_rejects.max(1),
            "hotspot {} vs uniform {} rejects",
            hot.recv_rejects,
            spread.recv_rejects
        );
    }

    #[test]
    fn offered_load_drives_buffering_time() {
        let cfg = MachineConfig::with_ni(NiKind::Cm5)
            .nodes(8)
            .flow_buffers(BufferCount::Finite(1));
        let slow = run_synthetic(
            &cfg,
            &SyntheticParams {
                mean_gap: Dur::us(20),
                ..SyntheticParams::default()
            },
        );
        let fast = run_synthetic(
            &cfg,
            &SyntheticParams {
                mean_gap: Dur::ns(200),
                ..SyntheticParams::default()
            },
        );
        let b = |r: &nisim_core::MachineReport| r.fraction(TimeCategory::Buffering);
        assert!(
            b(&fast) > b(&slow),
            "fast {} vs slow {}",
            b(&fast),
            b(&slow)
        );
    }

    #[test]
    fn per_node_summaries_expose_the_hot_node() {
        let cfg = MachineConfig::with_ni(NiKind::Cm5)
            .nodes(8)
            .flow_buffers(BufferCount::Finite(1));
        let p = SyntheticParams {
            mean_gap: Dur::ns(800),
            locality: Locality::Hotspot(0.9),
            ..SyntheticParams::default()
        };
        let r = run_synthetic(&cfg, &p);
        let hot = &r.per_node[0];
        let cold = &r.per_node[4];
        assert!(
            hot.messages_handled > 3 * cold.messages_handled,
            "hot {} vs cold {}",
            hot.messages_handled,
            cold.messages_handled
        );
        assert!(hot.recv_rejects >= cold.recv_rejects);
        let total: u64 = r.per_node.iter().map(|n| n.messages_handled).sum();
        assert_eq!(total, r.app_messages);
    }

    #[test]
    fn size_mix_is_respected() {
        let cfg = MachineConfig::with_ni(NiKind::Cni32Qm).nodes(4);
        let p = SyntheticParams {
            size_mix: vec![(4, 1.0)],
            ..SyntheticParams::default()
        };
        let r = run_synthetic(&cfg, &p);
        assert_eq!(r.msg_sizes.fraction_of(12), 1.0); // 4 B + 8 B header
    }
}
