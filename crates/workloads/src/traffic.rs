//! Open-loop traffic: seeded arrival processes driving per-node
//! message injectors.
//!
//! Every other workload in this crate is *closed-loop* — a program
//! issues its next send only after the previous action completed, so
//! offered load self-throttles to the machine's service rate. This
//! module is the open-loop complement: each node draws message arrival
//! times from a seeded stochastic process (Poisson, or a bursty 2-state
//! MMPP) fixed **before** the run, and injects messages as close to
//! those instants as the processor allows. When the machine falls
//! behind, arrivals back up and are issued back-to-back; latency is
//! measured from the *scheduled* arrival instant to handler dispatch,
//! so sender-side backlog counts — exactly the quantity that produces
//! the hockey-stick load/latency curve and separates the NI designs'
//! flow control under saturation.
//!
//! A run carries one or more **tenants** — competing services with
//! their own arrival process, destination pattern (uniform /
//! permutation / N→1 incast) and message size, sharing one machine.
//! Per-tenant scheduled-to-dispatch latency lands in a [`Log2Hist`]
//! whose merge is exact, so results are byte-identical at any worker
//! count, and the p50/p99/p999 blocks come out via the interpolated
//! percentile extraction in `nisim_engine::stats`.
//!
//! The scheduled instant rides *inside the message tag* (tenant index
//! in the top bits, arrival time modulo 2²⁷ ns below), so no
//! cross-node lookup table exists to checkpoint: in-flight messages
//! restore for free through the machine snapshot.

use std::sync::{Arc, Mutex};

use nisim_core::process::{Action, AppMessage, HandlerSpec, Process, SendSpec};
use nisim_core::{Machine, MachineConfig, MachineReport, TenantSummary};
use nisim_engine::json::{u64_from_hex, u64_hex, Json};
use nisim_engine::metrics::Log2Hist;
use nisim_engine::{Dur, SplitMix64, Time};
use nisim_net::NodeId;

/// Bits of the message tag holding the scheduled arrival time
/// (nanoseconds modulo 2²⁷ ≈ 134 ms — far beyond any single message's
/// latency, so the wrapped difference is exact).
const TAG_TIME_BITS: u32 = 27;
const TAG_TIME_MASK: u32 = (1 << TAG_TIME_BITS) - 1;
/// Maximum tenants per run (tag budget: 4 tenant bits keeps the tag
/// below the machine's reserved barrier range at `0xFFFF_0000`).
pub const MAX_TENANTS: usize = 16;

/// Seed salt separating the traffic RNG streams from the other
/// workload families.
const TRAFFIC_SALT: u64 = 0x7_4AFF_1C5A_1700;

/// Polling quantum (ns): the injector sleeps toward its next arrival in
/// chunks of at most this, because the processor model only drains
/// received messages between program actions (CM-5-style polling). The
/// quantum bounds the receive-dispatch slop a sleeping node adds — it
/// must stay well under the lightest-load interarrival gap and is part
/// of the deterministic schedule, not tunable noise.
const POLL_QUANTUM_NS: u64 = 400;

fn encode_tag(tenant: usize, sched_ns: u64) -> u32 {
    ((tenant as u32) << TAG_TIME_BITS) | (sched_ns as u32 & TAG_TIME_MASK)
}

fn decode_tag(tag: u32) -> (usize, u32) {
    ((tag >> TAG_TIME_BITS) as usize, tag & TAG_TIME_MASK)
}

/// Scheduled-arrival → now latency from a wrapped 27-bit timestamp.
fn tag_latency_ns(now_ns: u64, sched_wrapped: u32) -> u64 {
    ((now_ns as u32).wrapping_sub(sched_wrapped) & TAG_TIME_MASK) as u64
}

// ---------------------------------------------------------------------------
// Deterministic sampling
// ---------------------------------------------------------------------------

/// Natural log over `(0, 1]`, built from IEEE-754 `+ - * /` only so
/// sampled interarrival gaps are bit-identical on every platform (the
/// committed goldens depend on it; `f64::ln` goes through libm, whose
/// last-bit behaviour varies between hosts).
///
/// Decomposes `x = m · 2^e` with `m ∈ [1, 2)` via the bit pattern, then
/// `ln m = 2·atanh t` with `t = (m−1)/(m+1) ≤ 1/3` by a fixed-length
/// odd series (truncation ≤ 10⁻¹¹ absolute — sampling noise dwarfs it,
/// determinism is what matters).
fn det_ln(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x.is_finite(), "det_ln domain: {x}");
    let bits = x.to_bits();
    let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let series = t
        * (1.0
            + t2 * (1.0 / 3.0
                + t2 * (1.0 / 5.0
                    + t2 * (1.0 / 7.0
                        + t2 * (1.0 / 9.0
                            + t2 * (1.0 / 11.0
                                + t2 * (1.0 / 13.0
                                    + t2 * (1.0 / 15.0
                                        + t2 * (1.0 / 17.0 + t2 * (1.0 / 19.0))))))))));
    2.0 * series + e as f64 * std::f64::consts::LN_2
}

/// One exponential interarrival gap with the given mean, in whole
/// nanoseconds (at least 1).
fn exp_gap_ns(rng: &mut SplitMix64, mean_ns: u64) -> u64 {
    let u = rng.gen_f64(); // [0, 1): 1 - u is in (0, 1], never zero
    let gap = -det_ln(1.0 - u) * mean_ns.max(1) as f64;
    (gap as u64).max(1)
}

// ---------------------------------------------------------------------------
// Traffic description
// ---------------------------------------------------------------------------

/// A seeded message-arrival process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Exponential interarrivals with this mean gap.
    Poisson {
        /// Mean interarrival gap (ns) per node.
        mean_gap_ns: u64,
    },
    /// A 2-state Markov-modulated Poisson process: exponential
    /// interarrivals whose mean switches between two states, each held
    /// for an exponential dwell. State 0 is the quiet state, state 1
    /// the burst.
    Mmpp {
        /// Mean interarrival gap (ns) per state.
        mean_gap_ns: [u64; 2],
        /// Mean state dwell (ns) per state.
        mean_dwell_ns: [u64; 2],
    },
}

impl ArrivalProcess {
    /// The long-run mean arrival rate (messages per ns) this process
    /// offers — for Poisson simply `1/gap`, for MMPP the dwell-weighted
    /// average of the state rates.
    pub fn mean_rate(self) -> f64 {
        match self {
            ArrivalProcess::Poisson { mean_gap_ns } => 1.0 / mean_gap_ns.max(1) as f64,
            ArrivalProcess::Mmpp {
                mean_gap_ns,
                mean_dwell_ns,
            } => {
                let d0 = mean_dwell_ns[0].max(1) as f64;
                let d1 = mean_dwell_ns[1].max(1) as f64;
                let r0 = 1.0 / mean_gap_ns[0].max(1) as f64;
                let r1 = 1.0 / mean_gap_ns[1].max(1) as f64;
                (d0 * r0 + d1 * r1) / (d0 + d1)
            }
        }
    }
}

/// Where a tenant's messages go.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Uniformly random over the other nodes.
    Uniform,
    /// A fixed rotation: node `i` always sends to `(i + shift) % nodes`
    /// (`shift % nodes` must be non-zero so no node talks to itself).
    Permutation {
        /// Ring offset.
        shift: u32,
    },
    /// N→1 fan-in: every node sends to `sink`; the sink node does not
    /// inject for this tenant.
    Incast {
        /// The victim node.
        sink: u32,
    },
}

/// One tenant: an arrival process, a destination pattern and a message
/// size, replicated on every node of the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantSpec {
    /// Stable record key (`"uni"`, `"web"`, ...).
    pub name: &'static str,
    /// The arrival process each node runs for this tenant.
    pub arrivals: ArrivalProcess,
    /// Destination selection.
    pub pattern: TrafficPattern,
    /// Application payload per message (bytes).
    pub payload_bytes: u64,
    /// Messages each injecting node sends before this tenant drains
    /// (the run length knob — arrival *times* stay open-loop).
    pub messages_per_node: u32,
}

/// A full open-loop traffic configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrafficParams {
    /// The competing services sharing the machine.
    pub tenants: Vec<TenantSpec>,
    /// Handler computation per received message.
    pub handler_compute: Dur,
}

// ---------------------------------------------------------------------------
// Named presets (the bench/CLI surface)
// ---------------------------------------------------------------------------

/// The preset traffic shapes the load ladder sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficKind {
    /// One Poisson tenant, uniform destinations.
    PoissonUniform,
    /// One Poisson tenant, N→1 fan-in onto node 0.
    PoissonIncast,
    /// One bursty MMPP tenant, uniform destinations.
    MmppUniform,
    /// Two competing tenants (fine-grain uniform + bulk permutation).
    TenantMix,
}

impl TrafficKind {
    /// Every preset, in reporting order.
    pub const ALL: [TrafficKind; 4] = [
        TrafficKind::PoissonUniform,
        TrafficKind::PoissonIncast,
        TrafficKind::MmppUniform,
        TrafficKind::TenantMix,
    ];

    /// Stable record-key fragment.
    pub fn key(self) -> &'static str {
        match self {
            TrafficKind::PoissonUniform => "pois-uni",
            TrafficKind::PoissonIncast => "pois-incast",
            TrafficKind::MmppUniform => "mmpp-uni",
            TrafficKind::TenantMix => "mix",
        }
    }

    /// Parses a [`key`](TrafficKind::key) back.
    pub fn from_key(key: &str) -> Option<TrafficKind> {
        TrafficKind::ALL.into_iter().find(|k| k.key() == key)
    }
}

/// One point on the offered-load ladder: a preset shape at a load
/// level. `Copy`, so it can ride inside the bench harness's `Work`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrafficSpec {
    /// The traffic shape.
    pub kind: TrafficKind,
    /// Offered-load level, `1..=`[`MAX_LOAD_LEVEL`] (each level doubles
    /// the per-node arrival rate).
    pub level: u32,
}

/// Levels on the offered-load ladder.
pub const MAX_LOAD_LEVEL: u32 = 7;
/// Mean per-node interarrival gap at level 1 (ns); level `l` halves it
/// `l - 1` times, so the ladder spans a 64× load range.
pub const BASE_GAP_NS: u64 = 25_600;

/// The mean per-node interarrival gap at a ladder level.
pub fn level_gap_ns(level: u32) -> u64 {
    let level = level.clamp(1, MAX_LOAD_LEVEL);
    BASE_GAP_NS >> (level - 1)
}

impl TrafficSpec {
    /// The record key (`"traffic:pois-uni:3"`).
    pub fn key(self) -> String {
        format!("traffic:{}:{}", self.kind.key(), self.level)
    }

    /// Expands the preset into full parameters for an `nodes`-node
    /// machine.
    pub fn params(self, nodes: u32) -> TrafficParams {
        let gap = level_gap_ns(self.level);
        let tenants = match self.kind {
            TrafficKind::PoissonUniform => vec![TenantSpec {
                name: "uni",
                arrivals: ArrivalProcess::Poisson { mean_gap_ns: gap },
                pattern: TrafficPattern::Uniform,
                payload_bytes: 64,
                messages_per_node: 48,
            }],
            TrafficKind::PoissonIncast => vec![TenantSpec {
                name: "incast",
                arrivals: ArrivalProcess::Poisson { mean_gap_ns: gap },
                pattern: TrafficPattern::Incast { sink: 0 },
                payload_bytes: 64,
                messages_per_node: 48,
            }],
            TrafficKind::MmppUniform => vec![TenantSpec {
                name: "mmpp",
                // Quiet state at 2× the ladder gap, bursts at 1/4 of it,
                // dwells weighted so the long-run rate tracks the ladder.
                arrivals: ArrivalProcess::Mmpp {
                    mean_gap_ns: [gap * 2, (gap / 4).max(1)],
                    mean_dwell_ns: [gap * 24, gap * 8],
                },
                pattern: TrafficPattern::Uniform,
                payload_bytes: 64,
                messages_per_node: 48,
            }],
            TrafficKind::TenantMix => vec![
                TenantSpec {
                    name: "web",
                    arrivals: ArrivalProcess::Poisson { mean_gap_ns: gap },
                    pattern: TrafficPattern::Uniform,
                    payload_bytes: 64,
                    messages_per_node: 48,
                },
                TenantSpec {
                    name: "bulk",
                    arrivals: ArrivalProcess::Poisson {
                        mean_gap_ns: gap.saturating_mul(4),
                    },
                    pattern: TrafficPattern::Permutation {
                        shift: (nodes / 2).max(1),
                    },
                    payload_bytes: 1024,
                    messages_per_node: 12,
                },
            ],
        };
        TrafficParams {
            tenants,
            handler_compute: Dur::ns(200),
        }
    }
}

/// Stable tenant names for parameterised multi-tenant runs (TenantSpec
/// names are `'static` so the spec stays `Copy`).
pub const TENANT_NAMES: [&str; MAX_TENANTS] = [
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10", "t11", "t12", "t13", "t14",
    "t15",
];

/// A parameterised multi-tenant mix: `tenants` competing uniform
/// Poisson services with staggered rates and message sizes (tenant `i`
/// cycles through 1×/½×/¼× the ladder rate at 64/256/1024-byte
/// payloads). The CLI's `--tenants` flag builds its runs from this.
///
/// # Panics
///
/// Panics unless `1 <= tenants <= MAX_TENANTS`.
pub fn multi_tenant_params(tenants: usize, level: u32) -> TrafficParams {
    assert!(
        (1..=MAX_TENANTS).contains(&tenants),
        "1..={MAX_TENANTS} tenants required, got {tenants}"
    );
    let gap = level_gap_ns(level);
    let tenants = (0..tenants)
        .map(|i| {
            let class = (i % 3) as u32;
            TenantSpec {
                name: TENANT_NAMES[i],
                arrivals: ArrivalProcess::Poisson {
                    mean_gap_ns: gap << class,
                },
                pattern: TrafficPattern::Uniform,
                payload_bytes: 64u64 << (2 * class),
                messages_per_node: 48 >> class,
            }
        })
        .collect();
    TrafficParams {
        tenants,
        handler_compute: Dur::ns(200),
    }
}

// ---------------------------------------------------------------------------
// The injector process
// ---------------------------------------------------------------------------

/// One tenant's arrival stream on one node.
struct Injector {
    spec: TenantSpec,
    rng: SplitMix64,
    /// Scheduled arrival of the next message (ns). Meaningful only
    /// while `sent < messages_per_node` and the injector is active.
    next_at: u64,
    sent: u32,
    /// MMPP modulation state (always 0 for Poisson).
    state: u8,
    /// When the current MMPP state expires (ns).
    state_until: u64,
    /// False on nodes that do not inject this tenant (the incast sink).
    active: bool,
}

impl Injector {
    fn new(spec: TenantSpec, tenant: usize, me: NodeId, seed: u64) -> Injector {
        let active = match spec.pattern {
            TrafficPattern::Incast { sink } => me.0 != sink,
            _ => true,
        };
        let mut inj = Injector {
            spec,
            rng: SplitMix64::new(
                seed ^ TRAFFIC_SALT ^ ((tenant as u64) << 40) ^ ((me.0 as u64) << 8),
            ),
            next_at: 0,
            sent: 0,
            state: 0,
            state_until: 0,
            active,
        };
        if active {
            if let ArrivalProcess::Mmpp { mean_dwell_ns, .. } = spec.arrivals {
                inj.state_until = exp_gap_ns(&mut inj.rng, mean_dwell_ns[0]);
            }
            inj.schedule_next();
        }
        inj
    }

    /// True once this injector will send nothing further.
    fn exhausted(&self) -> bool {
        !self.active || self.sent >= self.spec.messages_per_node
    }

    /// Samples the next arrival instant after the current `next_at`.
    /// MMPP uses the memorylessness of the exponential: a gap that
    /// crosses the state boundary is discarded and redrawn at the new
    /// state's rate from the switch instant — an exact simulation of
    /// the modulated process, not an approximation.
    fn schedule_next(&mut self) {
        match self.spec.arrivals {
            ArrivalProcess::Poisson { mean_gap_ns } => {
                self.next_at += exp_gap_ns(&mut self.rng, mean_gap_ns);
            }
            ArrivalProcess::Mmpp {
                mean_gap_ns,
                mean_dwell_ns,
            } => {
                let mut t = self.next_at;
                loop {
                    let gap = exp_gap_ns(&mut self.rng, mean_gap_ns[self.state as usize]);
                    if t + gap <= self.state_until {
                        self.next_at = t + gap;
                        return;
                    }
                    t = self.state_until;
                    self.state ^= 1;
                    self.state_until =
                        t + exp_gap_ns(&mut self.rng, mean_dwell_ns[self.state as usize]);
                }
            }
        }
    }

    fn pick_dst(&mut self, me: NodeId, nodes: u32) -> NodeId {
        match self.spec.pattern {
            TrafficPattern::Uniform => loop {
                let n = NodeId(self.rng.gen_range(nodes as u64) as u32);
                if n != me {
                    return n;
                }
            },
            TrafficPattern::Permutation { shift } => {
                NodeId(((me.0 as u64 + shift as u64) % nodes as u64) as u32)
            }
            TrafficPattern::Incast { sink } => NodeId(sink),
        }
    }
}

/// Replays the first `count` scheduled arrival instants (ns) a tenant's
/// injector on `node` would produce under `seed` — the exact schedule
/// the machine run injects against, independent of machine state. The
/// incast sink node returns an empty schedule (it does not inject).
/// Ignores `messages_per_node`: the arrival process itself is infinite.
pub fn arrival_schedule(
    spec: TenantSpec,
    tenant: usize,
    node: NodeId,
    seed: u64,
    count: u32,
) -> Vec<u64> {
    let mut inj = Injector::new(spec, tenant, node, seed);
    if !inj.active {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        out.push(inj.next_at);
        inj.schedule_next();
    }
    out
}

/// Machine-wide accumulators, merged commutatively from every node's
/// handlers (bucket/counter additions only, so the total is identical
/// at any epoch worker count).
#[derive(Default)]
struct TrafficSink {
    offered: Vec<u64>,
    delivered: Vec<u64>,
    latency: Vec<Log2Hist>,
}

impl TrafficSink {
    fn with_tenants(n: usize) -> TrafficSink {
        TrafficSink {
            offered: vec![0; n],
            delivered: vec![0; n],
            latency: vec![Log2Hist::new(); n],
        }
    }
}

/// The per-node open-loop process: all tenants' injectors plus the
/// receive side. Owns its full dynamic state (checkpointable) and
/// mirrors every count into the shared sink for end-of-run reporting.
struct TrafficProcess {
    me: NodeId,
    nodes: u32,
    handler_compute: Dur,
    injectors: Vec<Injector>,
    /// Per-tenant receive latency, owned (snapshot state).
    recv: Vec<Log2Hist>,
    offered: Vec<u64>,
    delivered: Vec<u64>,
    sink: Arc<Mutex<TrafficSink>>,
}

impl TrafficProcess {
    fn new(
        me: NodeId,
        nodes: u32,
        seed: u64,
        params: &TrafficParams,
        sink: Arc<Mutex<TrafficSink>>,
    ) -> TrafficProcess {
        let n = params.tenants.len();
        TrafficProcess {
            me,
            nodes,
            handler_compute: params.handler_compute,
            injectors: params
                .tenants
                .iter()
                .enumerate()
                .map(|(t, &spec)| Injector::new(spec, t, me, seed))
                .collect(),
            recv: vec![Log2Hist::new(); n],
            offered: vec![0; n],
            delivered: vec![0; n],
            sink,
        }
    }
}

impl Process for TrafficProcess {
    fn next_action(&mut self, now: Time) -> Action {
        let now_ns = now.as_ns();
        // The earliest pending arrival across tenants (ties to the
        // lowest tenant index — deterministic).
        let next = self
            .injectors
            .iter()
            .enumerate()
            .filter(|(_, inj)| !inj.exhausted())
            .min_by_key(|(i, inj)| (inj.next_at, *i))
            .map(|(i, _)| i);
        let Some(t) = next else {
            return Action::Done;
        };
        let at = self.injectors[t].next_at;
        if at > now_ns {
            return Action::Compute(Dur::ns((at - now_ns).min(POLL_QUANTUM_NS)));
        }
        // The arrival is due (or backlogged): inject now, stamped with
        // its *scheduled* instant so the receiver measures open-loop
        // latency including any sender-side queueing.
        let inj = &mut self.injectors[t];
        let dst = inj.pick_dst(self.me, self.nodes);
        let payload = inj.spec.payload_bytes;
        inj.sent += 1;
        inj.schedule_next();
        self.offered[t] += 1;
        self.sink.lock().unwrap().offered[t] += 1;
        Action::Send(SendSpec::new(dst, payload, encode_tag(t, at)))
    }

    fn on_message(&mut self, msg: &AppMessage, now: Time) -> HandlerSpec {
        let (t, sched) = decode_tag(msg.tag);
        debug_assert!(t < self.recv.len(), "tenant bits out of range");
        let lat = tag_latency_ns(now.as_ns(), sched);
        self.recv[t].record(lat);
        self.delivered[t] += 1;
        {
            let mut s = self.sink.lock().unwrap();
            s.latency[t].record(lat);
            s.delivered[t] += 1;
        }
        HandlerSpec::compute(self.handler_compute)
    }

    fn is_done(&self) -> bool {
        self.injectors.iter().all(Injector::exhausted)
    }

    fn snapshot(&self) -> Option<Json> {
        let injectors = Json::Arr(
            self.injectors
                .iter()
                .map(|inj| {
                    Json::Arr(vec![
                        Json::from(inj.next_at),
                        Json::from(inj.sent as u64),
                        Json::from(inj.state as u64),
                        Json::from(inj.state_until),
                        Json::Str(u64_hex(inj.rng.state())),
                    ])
                })
                .collect(),
        );
        let counts = |v: &[u64]| Json::Arr(v.iter().map(|&x| Json::from(x)).collect());
        Some(
            Json::obj()
                .set("injectors", injectors)
                .set("offered", counts(&self.offered))
                .set("delivered", counts(&self.delivered))
                .set(
                    "recv",
                    Json::Arr(self.recv.iter().map(Log2Hist::to_json).collect()),
                ),
        )
    }

    fn restore(&mut self, state: &Json) -> bool {
        let n = self.injectors.len();
        let Some(injectors) = state.get("injectors").and_then(Json::as_arr) else {
            return false;
        };
        let (Some(offered), Some(delivered), Some(recv)) = (
            state.get("offered").and_then(Json::as_arr),
            state.get("delivered").and_then(Json::as_arr),
            state.get("recv").and_then(Json::as_arr),
        ) else {
            return false;
        };
        if injectors.len() != n || offered.len() != n || delivered.len() != n || recv.len() != n {
            return false;
        }
        let mut new_inj = Vec::with_capacity(n);
        for v in injectors {
            let Some(fields) = v.as_arr().filter(|f| f.len() == 5) else {
                return false;
            };
            let nums: Option<Vec<u64>> = fields[..4].iter().map(Json::as_u64).collect();
            let rng = fields[4].as_str().and_then(u64_from_hex);
            let (Some(nums), Some(rng)) = (nums, rng) else {
                return false;
            };
            new_inj.push((nums[0], nums[1] as u32, nums[2] as u8, nums[3], rng));
        }
        let parse_counts =
            |items: &[Json]| -> Option<Vec<u64>> { items.iter().map(Json::as_u64).collect() };
        let (Some(offered), Some(delivered)) = (parse_counts(offered), parse_counts(delivered))
        else {
            return false;
        };
        let hists: Option<Vec<Log2Hist>> = recv.iter().map(Log2Hist::from_json).collect();
        let Some(hists) = hists else {
            return false;
        };
        for (inj, (next_at, sent, mstate, state_until, rng)) in
            self.injectors.iter_mut().zip(new_inj)
        {
            inj.next_at = next_at;
            inj.sent = sent;
            inj.state = mstate;
            inj.state_until = state_until;
            inj.rng = SplitMix64::from_state(rng);
        }
        self.offered = offered;
        self.delivered = delivered;
        self.recv = hists;
        // Fold the restored history into the fresh sink exactly once,
        // so a resumed run's machine-wide totals equal the
        // uninterrupted run's (later deliveries add on top).
        let mut s = self.sink.lock().unwrap();
        for t in 0..n {
            s.offered[t] += self.offered[t];
            s.delivered[t] += self.delivered[t];
            s.latency[t].merge(&self.recv[t]);
        }
        true
    }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Builds traffic processes for a machine and collects the per-tenant
/// summaries afterwards. Split from [`run_traffic`] so sliced drivers
/// (checkpoint/chaos, the CLI) can own the machine loop themselves.
pub struct TrafficDriver {
    nodes: u32,
    seed: u64,
    params: TrafficParams,
    sink: Arc<Mutex<TrafficSink>>,
}

impl TrafficDriver {
    /// Prepares a driver for `cfg`'s node count and seed.
    ///
    /// # Panics
    ///
    /// Panics if the tenant list is empty or exceeds [`MAX_TENANTS`].
    pub fn new(cfg: &MachineConfig, params: &TrafficParams) -> TrafficDriver {
        assert!(
            !params.tenants.is_empty() && params.tenants.len() <= MAX_TENANTS,
            "1..={MAX_TENANTS} tenants required, got {}",
            params.tenants.len()
        );
        TrafficDriver {
            nodes: cfg.nodes,
            seed: cfg.seed,
            params: params.clone(),
            sink: Arc::new(Mutex::new(TrafficSink::with_tenants(params.tenants.len()))),
        }
    }

    /// The per-node process factory for [`Machine::new`] / [`Machine::run`].
    pub fn factory(&self) -> Box<dyn FnMut(NodeId) -> Box<dyn Process>> {
        let nodes = self.nodes;
        let seed = self.seed;
        let params = self.params.clone();
        let sink = self.sink.clone();
        Box::new(move |id| Box::new(TrafficProcess::new(id, nodes, seed, &params, sink.clone())))
    }

    /// Attaches the per-tenant summaries to a finished run's report.
    pub fn attach(&self, report: &mut MachineReport) {
        let s = self.sink.lock().unwrap();
        report.tenants = self
            .params
            .tenants
            .iter()
            .enumerate()
            .map(|(t, spec)| TenantSummary {
                name: spec.name.to_string(),
                offered: s.offered[t],
                delivered: s.delivered[t],
                latency: s.latency[t].clone(),
            })
            .collect();
    }
}

/// Runs open-loop traffic under `cfg` and returns the report with the
/// per-tenant latency blocks attached. Unlike the closed-loop runners
/// this does **not** insist on quiescence: a saturated design may stall
/// (a legitimate, reportable outcome of an overload study).
pub fn run_traffic(cfg: &MachineConfig, params: &TrafficParams) -> MachineReport {
    let driver = TrafficDriver::new(cfg, params);
    let mut report = Machine::run(cfg.clone(), driver.factory());
    driver.attach(&mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisim_core::NiKind;
    use nisim_net::BufferCount;

    #[test]
    fn det_ln_matches_std_ln() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..10_000 {
            let u = rng.gen_f64();
            let x = 1.0 - u;
            let (a, b) = (det_ln(x), x.ln());
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "det_ln({x}) = {a}, std = {b}"
            );
        }
        assert_eq!(det_ln(1.0), 0.0);
    }

    #[test]
    fn tag_round_trips_tenant_and_time() {
        for tenant in [0usize, 3, 15] {
            for sched in [0u64, 1, 12_345, (1 << 27) - 1, 1 << 30] {
                let tag = encode_tag(tenant, sched);
                assert!(tag < 0xFFFF_0000, "tag must stay below the barrier range");
                let (t, s) = decode_tag(tag);
                assert_eq!(t, tenant);
                assert_eq!(s as u64, sched & TAG_TIME_MASK as u64);
                // Latency decoding survives the 27-bit wrap.
                let lat = 77_000u64;
                assert_eq!(tag_latency_ns(sched + lat, s), lat);
            }
        }
    }

    #[test]
    fn traffic_run_delivers_every_message() {
        let cfg = MachineConfig::with_ni(NiKind::Cni32Qm)
            .nodes(8)
            .flow_buffers(BufferCount::Finite(8));
        let spec = TrafficSpec {
            kind: TrafficKind::PoissonUniform,
            level: 2,
        };
        let r = run_traffic(&cfg, &spec.params(8));
        assert!(r.all_quiescent, "light load must drain: {:?}", r.status);
        assert_eq!(r.tenants.len(), 1);
        let t = &r.tenants[0];
        assert_eq!(t.name, "uni");
        assert_eq!(t.offered, 8 * 48);
        assert_eq!(t.delivered, t.offered);
        assert_eq!(t.latency.count(), t.delivered);
        assert!(t.percentiles().is_monotone());
        assert!(t.percentiles().p50 > 0.0);
    }

    #[test]
    fn incast_sink_node_never_injects() {
        let cfg = MachineConfig::with_ni(NiKind::Cni512Q).nodes(4);
        let spec = TrafficSpec {
            kind: TrafficKind::PoissonIncast,
            level: 1,
        };
        let r = run_traffic(&cfg, &spec.params(4));
        assert_eq!(r.tenants[0].offered, 3 * 48);
        // Every message lands on node 0.
        assert_eq!(r.per_node[0].messages_handled, 3 * 48);
        for n in &r.per_node[1..] {
            assert_eq!(n.messages_handled, 0);
        }
    }

    #[test]
    fn tenant_mix_reports_both_tenants() {
        let cfg = MachineConfig::with_ni(NiKind::Ap3000).nodes(8);
        let spec = TrafficSpec {
            kind: TrafficKind::TenantMix,
            level: 2,
        };
        let r = run_traffic(&cfg, &spec.params(8));
        assert_eq!(r.tenants.len(), 2);
        assert_eq!(r.tenants[0].name, "web");
        assert_eq!(r.tenants[1].name, "bulk");
        assert_eq!(r.tenants[0].offered, 8 * 48);
        assert_eq!(r.tenants[1].offered, 8 * 12);
        for t in &r.tenants {
            assert_eq!(t.delivered, t.offered);
        }
    }

    #[test]
    fn higher_load_levels_raise_tail_latency() {
        let cfg = MachineConfig::with_ni(NiKind::Cm5)
            .nodes(8)
            .flow_buffers(BufferCount::Finite(8));
        let p99 = |level: u32| {
            let spec = TrafficSpec {
                kind: TrafficKind::PoissonUniform,
                level,
            };
            run_traffic(&cfg, &spec.params(8)).tenants[0]
                .latency
                .percentile(0.99)
        };
        let (light, heavy) = (p99(1), p99(MAX_LOAD_LEVEL));
        assert!(
            heavy > 2.0 * light,
            "overload must blow up the tail: light {light}, heavy {heavy}"
        );
    }

    #[test]
    fn traffic_keys_are_stable() {
        let spec = TrafficSpec {
            kind: TrafficKind::PoissonIncast,
            level: 3,
        };
        assert_eq!(spec.key(), "traffic:pois-incast:3");
        for k in TrafficKind::ALL {
            assert_eq!(TrafficKind::from_key(k.key()), Some(k));
        }
        assert_eq!(TrafficKind::from_key("nope"), None);
        assert_eq!(level_gap_ns(1), BASE_GAP_NS);
        assert_eq!(level_gap_ns(2), BASE_GAP_NS / 2);
    }
}
