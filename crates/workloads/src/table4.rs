//! Table 4 of the paper: macrobenchmark message-size distributions.
//!
//! The paper reports, for each application, the modal message sizes
//! (header included) and the percentage of traffic at each. Those
//! distributions are encoded here as the *target* the skeletons are
//! parameterised to produce; [`characterize`] reruns a skeleton and
//! returns the message-size histogram actually generated so the `table4`
//! harness binary can print measured-vs-paper side by side.

use nisim_core::MachineConfig;
use nisim_engine::stats::Histogram;

use crate::apps::{run_app, MacroApp};

/// One modal size of an application's traffic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizeMode {
    /// Message size in bytes, header included.
    pub bytes: u64,
    /// Fraction of the application's messages at this size.
    pub fraction: f64,
}

/// The paper's Table 4 rows (modal sizes and fractions).
///
/// `unstructured` is special-cased in the paper: one mode at 8 bytes and
/// a broad 12–1812 B range averaging 351 B; we record the 8 B mode and
/// the range's average under [`UNSTRUCTURED_RANGE_MEAN`].
pub fn paper_modes(app: MacroApp) -> &'static [SizeMode] {
    match app {
        MacroApp::Appbt => &[
            SizeMode {
                bytes: 12,
                fraction: 0.67,
            },
            SizeMode {
                bytes: 32,
                fraction: 0.32,
            },
        ],
        MacroApp::Barnes => &[
            SizeMode {
                bytes: 12,
                fraction: 0.67,
            },
            SizeMode {
                bytes: 16,
                fraction: 0.04,
            },
            SizeMode {
                bytes: 140,
                fraction: 0.29,
            },
        ],
        MacroApp::Dsmc => &[
            SizeMode {
                bytes: 12,
                fraction: 0.45,
            },
            SizeMode {
                bytes: 44,
                fraction: 0.25,
            },
            SizeMode {
                bytes: 140,
                fraction: 0.26,
            },
        ],
        MacroApp::Em3d => &[
            SizeMode {
                bytes: 12,
                fraction: 0.02,
            },
            SizeMode {
                bytes: 20,
                fraction: 0.98,
            },
        ],
        MacroApp::Moldyn => &[
            SizeMode {
                bytes: 8,
                fraction: 0.05,
            },
            SizeMode {
                bytes: 12,
                fraction: 0.65,
            },
            SizeMode {
                bytes: 140,
                fraction: 0.27,
            },
            SizeMode {
                bytes: 3084,
                fraction: 0.02,
            },
        ],
        MacroApp::Spsolve => &[
            SizeMode {
                bytes: 8,
                fraction: 0.06,
            },
            SizeMode {
                bytes: 12,
                fraction: 0.03,
            },
            SizeMode {
                bytes: 20,
                fraction: 0.91,
            },
        ],
        MacroApp::Unstructured => &[SizeMode {
            bytes: 8,
            fraction: 0.35,
        }],
    }
}

/// Mean of unstructured's bulk-message size range (bytes, with header).
pub const UNSTRUCTURED_RANGE_MEAN: f64 = 351.0;

/// The paper's reported per-application average message sizes span
/// 19–230 bytes (§2.1); used as a sanity check on the skeletons.
pub const PAPER_AVG_RANGE: (f64, f64) = (19.0, 230.0);

/// Runs `app` under `cfg` and returns the message-size histogram its
/// simulated traffic produced (header-inclusive sizes).
pub fn characterize(app: MacroApp, cfg: &MachineConfig) -> Histogram {
    run_app(app, cfg, &app.default_params()).msg_sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fractions_are_near_complete() {
        // Each row's listed fractions should cover most of the traffic
        // (the paper notes trivial fractions at other sizes).
        for app in MacroApp::ALL {
            if app == MacroApp::Unstructured {
                continue; // one mode + a range
            }
            let total: f64 = paper_modes(app).iter().map(|m| m.fraction).sum();
            assert!(total >= 0.9, "{app:?}: {total}");
        }
    }

    #[test]
    fn modes_are_sorted_and_positive() {
        for app in MacroApp::ALL {
            let modes = paper_modes(app);
            for w in modes.windows(2) {
                assert!(w[0].bytes < w[1].bytes);
            }
            for m in modes {
                assert!(m.fraction > 0.0 && m.fraction <= 1.0);
                assert!(m.bytes >= 8, "messages include an 8-byte header");
            }
        }
    }
}
