//! # nisim-workloads
//!
//! Micro- and macrobenchmark workloads for the `nisim` NI design study.
//!
//! * [`micro`] — the two §6.1 microbenchmarks: process-to-process
//!   round-trip latency and streaming bandwidth (Table 5),
//! * [`apps`] — communication skeletons of the seven §5.2
//!   macrobenchmarks (appbt, barnes, dsmc, em3d, moldyn, spsolve,
//!   unstructured), parameterised by the paper's Table 4 message-size
//!   distributions and communication patterns,
//! * [`skeleton`] — the shared workload framework: step-driven
//!   processes and a real message-based barrier,
//! * [`table4`] — the Table 4 distributions as data plus the
//!   characterisation runner that regenerates the table from simulated
//!   traffic,
//! * [`traffic`] — the open-loop traffic engine: seeded Poisson/MMPP
//!   arrival processes, uniform/permutation/incast destination
//!   patterns, and multi-tenant mixes, with per-tenant tail-latency
//!   histograms (the load/latency hockey-stick study).
//!
//! The applications are *skeletons*: they reproduce each application's
//! communication pattern (who talks to whom, how often, in what sizes and
//! bursts, with how much computation in between) rather than its numerics
//! — which is what the paper's NI comparisons are sensitive to. See
//! DESIGN.md §2 for the substitution argument.

pub mod apps;
pub mod micro;
pub mod skeleton;
pub mod skeleton_support;
pub mod synthetic;
pub mod table4;
pub mod traffic;

pub use apps::{run_app, AppParams, MacroApp};
pub use micro::bandwidth::{measure_bandwidth, BandwidthResult};
pub use micro::connsweep::{measure_conn_sweep, ConnSweepResult, SWEEP_ENDPOINTS};
pub use micro::pingpong::{measure_round_trip, RoundTripResult};
pub use micro::strided::{measure_strided, StridedResult, StridedStrategy};
pub use skeleton::{Skeleton, SkeletonProcess, Step};
pub use synthetic::{run_synthetic, Locality, SyntheticParams};
pub use traffic::{
    arrival_schedule, multi_tenant_params, run_traffic, ArrivalProcess, TenantSpec, TrafficDriver,
    TrafficKind, TrafficParams, TrafficPattern, TrafficSpec, MAX_LOAD_LEVEL,
};
