//! The shared workload framework.
//!
//! A macrobenchmark skeleton describes *what the program does* as a
//! sequence of [`Step`]s plus an active-message handler; the generic
//! [`SkeletonProcess`] adapts it to the simulator's
//! [`Process`] interface and supplies a **real message-based barrier**
//! (all-to-root arrival + root broadcast release), so synchronisation
//! traffic exercises the NI under test exactly like application traffic —
//! the paper's runs do the same through Tempest.

use nisim_core::process::{Action, AppMessage, HandlerSpec, Process, SendSpec};
use nisim_engine::{Dur, Json, Time};
use nisim_net::NodeId;

/// Application tags at or above this value are reserved for the barrier.
pub const BARRIER_TAG_BASE: u32 = 0xFFFF_0000;
/// Tag of a barrier arrival message (node → root).
pub const TAG_BARRIER_ARRIVE: u32 = BARRIER_TAG_BASE;
/// Tag of a barrier release message (root → nodes).
pub const TAG_BARRIER_RELEASE: u32 = BARRIER_TAG_BASE + 1;
/// Wire payload of a barrier message (4 B: 12 B on the wire with the
/// header — the small control messages visible in Table 4).
pub const BARRIER_PAYLOAD: u64 = 4;

/// One step of a skeleton's program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Compute for the given duration.
    Compute(Dur),
    /// Send one application message.
    Send(SendSpec),
    /// Wait until the skeleton reports readiness via
    /// [`Skeleton::ready_to_proceed`] (e.g. all replies arrived).
    WaitUntilReady,
    /// Synchronise all nodes with a message barrier.
    Barrier,
    /// The program is finished.
    Done,
}

/// Serialises a [`SendSpec`] for checkpointing (shared by skeletons that
/// queue sends in their dynamic state).
pub fn spec_to_json(s: &SendSpec) -> Json {
    Json::Arr(vec![
        Json::from(s.dst.0),
        Json::from(s.payload_bytes),
        Json::from(s.tag),
        Json::from(s.conn),
    ])
}

/// Inverse of [`spec_to_json`].
pub fn spec_from_json(v: &Json) -> Option<SendSpec> {
    let [dst, payload, tag, conn] = v.as_arr().and_then(|a| <&[Json; 4]>::try_from(a).ok())?;
    let dst = dst.as_u64()?;
    let tag = tag.as_u64()?;
    let conn = conn.as_u64()?;
    if dst > u32::MAX as u64 || tag > u32::MAX as u64 || conn > u32::MAX as u64 {
        return None;
    }
    Some(SendSpec {
        dst: NodeId(dst as u32),
        payload_bytes: payload.as_u64()?,
        tag: tag as u32,
        conn: conn as u32,
    })
}

/// Serialises a program [`Step`] for checkpointing.
pub fn step_to_json(s: &Step) -> Json {
    match s {
        Step::Compute(d) => Json::Arr(vec![Json::from("compute"), Json::from(d.as_ns())]),
        Step::Send(spec) => Json::Arr(vec![Json::from("send"), spec_to_json(spec)]),
        Step::WaitUntilReady => Json::Arr(vec![Json::from("wait")]),
        Step::Barrier => Json::Arr(vec![Json::from("barrier")]),
        Step::Done => Json::Arr(vec![Json::from("done")]),
    }
}

/// Inverse of [`step_to_json`].
pub fn step_from_json(v: &Json) -> Option<Step> {
    let arr = v.as_arr()?;
    match (arr.first()?.as_str()?, arr.len()) {
        ("compute", 2) => Some(Step::Compute(Dur::ns(arr[1].as_u64()?))),
        ("send", 2) => Some(Step::Send(spec_from_json(&arr[1])?)),
        ("wait", 1) => Some(Step::WaitUntilReady),
        ("barrier", 1) => Some(Step::Barrier),
        ("done", 1) => Some(Step::Done),
        _other => None,
    }
}

/// A macrobenchmark communication skeleton for one node.
///
/// `Send` is required (via [`Process`]) so nodes can be handed to
/// epoch-driver worker threads.
pub trait Skeleton: Send {
    /// The next program step. Called when the previous step completed
    /// (for [`Step::WaitUntilReady`]: when readiness was reached).
    fn next_step(&mut self, now: Time) -> Step;

    /// Handler for an application (non-barrier) message.
    fn on_app_message(&mut self, msg: &AppMessage, now: Time) -> HandlerSpec;

    /// Whether a pending [`Step::WaitUntilReady`] can proceed. Re-polled
    /// after every handled message.
    fn ready_to_proceed(&self) -> bool {
        true
    }

    /// Serialises the skeleton's dynamic state for checkpointing. `None`
    /// (the default) marks the workload unsnapshotable; machine
    /// checkpoints then fail with a typed error.
    fn snapshot(&self) -> Option<Json> {
        None
    }

    /// Restores state captured by [`Skeleton::snapshot`] into a freshly
    /// constructed skeleton (same node, same parameters). Returns `false`
    /// on shape mismatch or if unsnapshotable (the default).
    fn restore(&mut self, state: &Json) -> bool {
        let _ = state;
        false
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Executing ordinary steps.
    Stepping,
    /// Waiting for the skeleton's readiness condition.
    Waiting,
    /// In the barrier: sends queued / waiting for release.
    InBarrier,
    /// Finished.
    Finished,
}

/// Adapts a [`Skeleton`] to the simulator's [`Process`] interface and
/// implements the message barrier.
pub struct SkeletonProcess<S> {
    skeleton: S,
    node: NodeId,
    nodes: u32,
    mode: Mode,
    /// Barrier sends not yet issued (arrive or release messages).
    barrier_sends: Vec<SendSpec>,
    /// Root only: arrivals (including self) in the current epoch.
    barrier_arrivals: u32,
    /// True once this node's current barrier epoch has been released.
    barrier_released: bool,
    /// Handler cost charged for barrier bookkeeping.
    barrier_handler_cost: Dur,
}

impl<S: Skeleton> SkeletonProcess<S> {
    /// Wraps `skeleton` for `node` of a `nodes`-node machine.
    pub fn new(skeleton: S, node: NodeId, nodes: u32) -> SkeletonProcess<S> {
        SkeletonProcess {
            skeleton,
            node,
            nodes,
            mode: Mode::Stepping,
            barrier_sends: Vec::new(),
            barrier_arrivals: 0,
            barrier_released: false,
            barrier_handler_cost: Dur::ns(30),
        }
    }

    /// Access to the wrapped skeleton (for result extraction).
    pub fn skeleton(&self) -> &S {
        &self.skeleton
    }

    fn is_root(&self) -> bool {
        self.node.0 == 0
    }

    fn enter_barrier(&mut self) {
        self.mode = Mode::InBarrier;
        self.barrier_released = false;
        if self.is_root() {
            self.barrier_arrivals += 1; // count ourselves
            self.check_barrier_release();
        } else {
            self.barrier_sends.push(SendSpec::new(
                NodeId(0),
                BARRIER_PAYLOAD,
                TAG_BARRIER_ARRIVE,
            ));
        }
    }

    /// Root: if everyone arrived, queue the release broadcast.
    fn check_barrier_release(&mut self) {
        if self.is_root() && self.barrier_arrivals == self.nodes {
            self.barrier_arrivals = 0;
            for i in 1..self.nodes {
                self.barrier_sends.push(SendSpec::new(
                    NodeId(i),
                    BARRIER_PAYLOAD,
                    TAG_BARRIER_RELEASE,
                ));
            }
            self.barrier_released = true;
        }
    }

    fn barrier_passed(&self) -> bool {
        self.barrier_released && self.barrier_sends.is_empty()
    }
}

impl<S: Skeleton> Process for SkeletonProcess<S> {
    fn next_action(&mut self, now: Time) -> Action {
        loop {
            match self.mode {
                Mode::Finished => return Action::Done,
                Mode::InBarrier => {
                    if let Some(send) = self.barrier_sends.pop() {
                        return Action::Send(send);
                    }
                    if self.barrier_passed() {
                        self.mode = Mode::Stepping;
                        continue;
                    }
                    return Action::Wait;
                }
                Mode::Waiting => {
                    if self.skeleton.ready_to_proceed() {
                        self.mode = Mode::Stepping;
                        continue;
                    }
                    return Action::Wait;
                }
                Mode::Stepping => match self.skeleton.next_step(now) {
                    Step::Compute(d) => return Action::Compute(d),
                    Step::Send(spec) => return Action::Send(spec),
                    Step::WaitUntilReady => {
                        self.mode = Mode::Waiting;
                        continue;
                    }
                    Step::Barrier => {
                        self.enter_barrier();
                        continue;
                    }
                    Step::Done => {
                        self.mode = Mode::Finished;
                        return Action::Done;
                    }
                },
            }
        }
    }

    fn on_message(&mut self, msg: &AppMessage, now: Time) -> HandlerSpec {
        match msg.tag {
            TAG_BARRIER_ARRIVE => {
                debug_assert!(self.is_root(), "arrival at non-root");
                self.barrier_arrivals += 1;
                self.check_barrier_release();
                let sends = std::mem::take(&mut self.barrier_sends);
                HandlerSpec {
                    compute: self.barrier_handler_cost,
                    sends,
                }
            }
            TAG_BARRIER_RELEASE => {
                self.barrier_released = true;
                HandlerSpec::compute(self.barrier_handler_cost)
            }
            _ => self.skeleton.on_app_message(msg, now),
        }
    }

    fn is_done(&self) -> bool {
        self.mode == Mode::Finished
    }

    fn snapshot(&self) -> Option<Json> {
        let skeleton = self.skeleton.snapshot()?;
        Some(
            Json::obj()
                .set(
                    "mode",
                    match self.mode {
                        Mode::Stepping => "stepping",
                        Mode::Waiting => "waiting",
                        Mode::InBarrier => "in-barrier",
                        Mode::Finished => "finished",
                    },
                )
                .set(
                    "barrier_sends",
                    Json::Arr(self.barrier_sends.iter().map(spec_to_json).collect()),
                )
                .set("barrier_arrivals", u64::from(self.barrier_arrivals))
                .set("barrier_released", self.barrier_released)
                .set("skeleton", skeleton),
        )
    }

    fn restore(&mut self, state: &Json) -> bool {
        let mode = match state.get("mode").and_then(Json::as_str) {
            Some("stepping") => Mode::Stepping,
            Some("waiting") => Mode::Waiting,
            Some("in-barrier") => Mode::InBarrier,
            Some("finished") => Mode::Finished,
            _other => return false,
        };
        let Some(sends) = state
            .get("barrier_sends")
            .and_then(Json::as_arr)
            .and_then(|a| a.iter().map(spec_from_json).collect::<Option<Vec<_>>>())
        else {
            return false;
        };
        let Some(arrivals) = state.get("barrier_arrivals").and_then(Json::as_u64) else {
            return false;
        };
        let Some(Json::Bool(released)) = state.get("barrier_released") else {
            return false;
        };
        let Some(inner) = state.get("skeleton") else {
            return false;
        };
        if arrivals > u64::from(self.nodes) || !self.skeleton.restore(inner) {
            return false;
        }
        self.mode = mode;
        self.barrier_sends = sends;
        self.barrier_arrivals = arrivals as u32;
        self.barrier_released = *released;
        true
    }
}

/// Builds a machine factory from a per-node skeleton constructor.
pub fn skeleton_factory<S: Skeleton + 'static>(
    nodes: u32,
    mut make: impl FnMut(NodeId) -> S,
) -> impl FnMut(NodeId) -> Box<dyn Process> {
    move |id| Box::new(SkeletonProcess::new(make(id), id, nodes)) as Box<dyn Process>
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisim_core::{Machine, MachineConfig, NiKind};

    /// A skeleton that computes, barriers, computes, and finishes.
    struct TwoPhases {
        phase: u32,
    }

    impl Skeleton for TwoPhases {
        fn next_step(&mut self, _now: Time) -> Step {
            self.phase += 1;
            match self.phase {
                1 => Step::Compute(Dur::ns(500)),
                2 => Step::Barrier,
                3 => Step::Compute(Dur::ns(100)),
                _ => Step::Done,
            }
        }

        fn on_app_message(&mut self, _msg: &AppMessage, _now: Time) -> HandlerSpec {
            HandlerSpec::empty()
        }
    }

    #[test]
    fn barrier_synchronises_all_nodes() {
        for nodes in [2u32, 4, 16] {
            let cfg = MachineConfig::with_ni(NiKind::Cni32Qm).nodes(nodes);
            let report = Machine::run(cfg, skeleton_factory(nodes, |_| TwoPhases { phase: 0 }));
            assert!(report.all_quiescent, "{nodes} nodes");
            // Barrier traffic: (nodes-1) arrivals + (nodes-1) releases.
            assert_eq!(report.app_messages as u32, 2 * (nodes - 1));
        }
    }

    #[test]
    fn repeated_barriers_stay_in_step() {
        struct ManyBarriers {
            left: u32,
        }
        impl Skeleton for ManyBarriers {
            fn next_step(&mut self, _now: Time) -> Step {
                if self.left == 0 {
                    return Step::Done;
                }
                self.left -= 1;
                Step::Barrier
            }
            fn on_app_message(&mut self, _m: &AppMessage, _now: Time) -> HandlerSpec {
                HandlerSpec::empty()
            }
        }
        let cfg = MachineConfig::with_ni(NiKind::Cm5).nodes(4);
        let report = Machine::run(cfg, skeleton_factory(4, |_| ManyBarriers { left: 10 }));
        assert!(report.all_quiescent);
        assert_eq!(report.app_messages, 10 * 2 * 3);
    }

    #[test]
    fn barrier_messages_are_small_control_messages() {
        let cfg = MachineConfig::with_ni(NiKind::Cm5).nodes(4);
        let report = Machine::run(cfg, skeleton_factory(4, |_| TwoPhases { phase: 0 }));
        // All barrier messages are 12 B on the wire (4 B payload + 8 B
        // header), matching the small-message peaks of Table 4.
        assert_eq!(report.msg_sizes.count_of(12), report.app_messages);
    }

    #[test]
    fn wait_until_ready_blocks_until_message() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        struct Producer {
            sent: bool,
        }
        impl Skeleton for Producer {
            fn next_step(&mut self, _now: Time) -> Step {
                if self.sent {
                    Step::Done
                } else {
                    self.sent = true;
                    Step::Send(SendSpec::new(NodeId(1), 64, 7))
                }
            }
            fn on_app_message(&mut self, _m: &AppMessage, _now: Time) -> HandlerSpec {
                HandlerSpec::empty()
            }
        }
        struct Consumer {
            got: Arc<AtomicBool>,
        }
        impl Skeleton for Consumer {
            fn next_step(&mut self, _now: Time) -> Step {
                if self.got.load(Ordering::Relaxed) {
                    Step::Done
                } else {
                    Step::WaitUntilReady
                }
            }
            fn on_app_message(&mut self, msg: &AppMessage, _now: Time) -> HandlerSpec {
                assert_eq!(msg.tag, 7);
                assert_eq!(msg.payload_bytes, 64);
                self.got.store(true, Ordering::Relaxed);
                HandlerSpec::compute(Dur::ns(5))
            }
            fn ready_to_proceed(&self) -> bool {
                self.got.load(Ordering::Relaxed)
            }
        }

        let got = Arc::new(AtomicBool::new(false));
        let got2 = got.clone();
        let cfg = MachineConfig::with_ni(NiKind::Ap3000).nodes(2);
        let report = Machine::run(cfg, move |id| -> Box<dyn Process> {
            if id.0 == 0 {
                Box::new(SkeletonProcess::new(Producer { sent: false }, id, 2))
            } else {
                Box::new(SkeletonProcess::new(Consumer { got: got2.clone() }, id, 2))
            }
        });
        assert!(report.all_quiescent);
        assert!(got.load(Ordering::Relaxed));
    }
}
