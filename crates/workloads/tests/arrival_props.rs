//! Property tests for the open-loop arrival processes: empirical rates
//! track the configured means, schedules are deterministic per seed and
//! decorrelated across seeds/nodes/tenants, the MMPP actually bursts,
//! and a traffic run produces byte-identical per-tenant results at any
//! epoch worker count.

use nisim_core::{MachineConfig, NiKind};
use nisim_net::NodeId;
use nisim_workloads::traffic::{
    arrival_schedule, run_traffic, ArrivalProcess, TenantSpec, TrafficKind, TrafficPattern,
    TrafficSpec,
};

fn tenant(arrivals: ArrivalProcess, pattern: TrafficPattern) -> TenantSpec {
    TenantSpec {
        name: "probe",
        arrivals,
        pattern,
        payload_bytes: 64,
        messages_per_node: 1,
    }
}

/// Mean interarrival gap over a long schedule.
fn empirical_gap(schedule: &[u64]) -> f64 {
    assert!(schedule.len() >= 2);
    (schedule[schedule.len() - 1] - schedule[0]) as f64 / (schedule.len() - 1) as f64
}

/// Index of dispersion (variance/mean) of arrival counts in fixed
/// windows — 1 for Poisson, > 1 for bursty processes.
fn dispersion(schedule: &[u64], window_ns: u64) -> f64 {
    let horizon = *schedule.last().unwrap();
    let windows = (horizon / window_ns) as usize;
    assert!(windows >= 50, "need enough windows for a stable estimate");
    let mut counts = vec![0u64; windows];
    for &t in schedule {
        let w = (t / window_ns) as usize;
        if w < windows {
            counts[w] += 1;
        }
    }
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / n;
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean) * (c as f64 - mean))
        .sum::<f64>()
        / n;
    var / mean
}

#[test]
fn poisson_empirical_rate_matches_configured_mean() {
    for mean_gap_ns in [500u64, 4_000, 25_600] {
        let spec = tenant(
            ArrivalProcess::Poisson { mean_gap_ns },
            TrafficPattern::Uniform,
        );
        let sched = arrival_schedule(spec, 0, NodeId(3), 0xA11CE, 20_000);
        let got = empirical_gap(&sched);
        let want = mean_gap_ns as f64;
        assert!(
            (got - want).abs() / want < 0.05,
            "gap {mean_gap_ns}: empirical {got} vs configured {want}"
        );
        // The configured long-run rate agrees too.
        let rate = spec.arrivals.mean_rate();
        assert!((rate * want - 1.0).abs() < 1e-12);
    }
}

#[test]
fn mmpp_empirical_rate_matches_dwell_weighted_mean() {
    let arrivals = ArrivalProcess::Mmpp {
        mean_gap_ns: [4_000, 250],
        mean_dwell_ns: [40_000, 10_000],
    };
    let spec = tenant(arrivals, TrafficPattern::Uniform);
    let sched = arrival_schedule(spec, 0, NodeId(0), 0xB0B, 50_000);
    let got_rate = 1.0 / empirical_gap(&sched);
    let want_rate = arrivals.mean_rate();
    assert!(
        (got_rate - want_rate).abs() / want_rate < 0.10,
        "empirical rate {got_rate} vs dwell-weighted {want_rate}"
    );
}

#[test]
fn mmpp_dwell_states_produce_bursts() {
    // With a 16x rate ratio between states, windowed arrival counts must
    // be overdispersed relative to Poisson (index of dispersion well
    // above 1); a Poisson stream at the same mean rate stays near 1.
    let mmpp = ArrivalProcess::Mmpp {
        mean_gap_ns: [4_000, 250],
        mean_dwell_ns: [40_000, 10_000],
    };
    let mmpp_sched = arrival_schedule(
        tenant(mmpp, TrafficPattern::Uniform),
        0,
        NodeId(1),
        0xD15,
        50_000,
    );
    let mean_gap = empirical_gap(&mmpp_sched);
    let pois = ArrivalProcess::Poisson {
        mean_gap_ns: mean_gap as u64,
    };
    let pois_sched = arrival_schedule(
        tenant(pois, TrafficPattern::Uniform),
        0,
        NodeId(1),
        0xD15,
        50_000,
    );
    let window = 20_000u64; // ~a dwell; long enough to hold several arrivals
    let d_mmpp = dispersion(&mmpp_sched, window);
    let d_pois = dispersion(&pois_sched, window);
    assert!(
        d_mmpp > 2.0,
        "MMPP should be overdispersed: got {d_mmpp:.2}"
    );
    assert!(
        d_pois < 1.5,
        "Poisson control should not be: got {d_pois:.2}"
    );
    assert!(d_mmpp > 2.0 * d_pois);
}

#[test]
fn schedules_are_deterministic_per_seed_and_distinct_across_streams() {
    let spec = tenant(
        ArrivalProcess::Poisson { mean_gap_ns: 1_000 },
        TrafficPattern::Uniform,
    );
    let base = arrival_schedule(spec, 0, NodeId(2), 42, 1_000);
    // Same (seed, node, tenant) replays the identical schedule.
    assert_eq!(base, arrival_schedule(spec, 0, NodeId(2), 42, 1_000));
    // Any change of seed, node or tenant index decorrelates the stream.
    assert_ne!(base, arrival_schedule(spec, 0, NodeId(2), 43, 1_000));
    assert_ne!(base, arrival_schedule(spec, 0, NodeId(3), 42, 1_000));
    assert_ne!(base, arrival_schedule(spec, 1, NodeId(2), 42, 1_000));
    // Schedules are strictly increasing (gaps are at least 1 ns).
    for w in base.windows(2) {
        assert!(w[0] < w[1]);
    }
}

#[test]
fn incast_sink_has_an_empty_schedule() {
    let spec = tenant(
        ArrivalProcess::Poisson { mean_gap_ns: 1_000 },
        TrafficPattern::Incast { sink: 5 },
    );
    assert!(arrival_schedule(spec, 0, NodeId(5), 7, 100).is_empty());
    assert_eq!(arrival_schedule(spec, 0, NodeId(4), 7, 100).len(), 100);
}

#[test]
fn traffic_runs_are_byte_identical_across_worker_counts() {
    // The whole point of sink commutativity: per-tenant histograms and
    // counts must not depend on epoch parallelism.
    for kind in TrafficKind::ALL {
        let spec = TrafficSpec { kind, level: 3 };
        let reference = {
            let cfg = MachineConfig::with_ni(NiKind::Cni32Qm).nodes(8).workers(1);
            run_traffic(&cfg, &spec.params(8))
        };
        let parallel = {
            let cfg = MachineConfig::with_ni(NiKind::Cni32Qm).nodes(8).workers(4);
            run_traffic(&cfg, &spec.params(8))
        };
        assert_eq!(
            reference.tenants,
            parallel.tenants,
            "{}: tenant summaries diverged between 1 and 4 workers",
            spec.key()
        );
        // Byte-level: the serialized histograms match exactly.
        for (a, b) in reference.tenants.iter().zip(&parallel.tenants) {
            assert_eq!(
                a.latency.to_json().to_compact(),
                b.latency.to_json().to_compact()
            );
        }
        assert_eq!(reference.app_messages, parallel.app_messages);
        assert_eq!(reference.elapsed, parallel.elapsed);
    }
}
