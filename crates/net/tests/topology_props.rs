//! Property tests of the topology extension: route validity and metric
//! sanity for arbitrary machine sizes and endpoints.

use proptest::prelude::*;

use nisim_net::topology::Topology;
use nisim_net::NodeId;

proptest! {
    /// Every route is a connected chain from src to dst with no repeated
    /// links, and its endpoints stay in range.
    #[test]
    fn routes_are_valid_chains(nodes in 2u32..40, src in 0u32..40, dst in 0u32..40) {
        let src = NodeId(src % nodes);
        let dst = NodeId(dst % nodes);
        for topo in [Topology::Ring, Topology::Mesh2D] {
            let route = topo.route(src, dst, nodes);
            if src == dst {
                prop_assert!(route.is_empty());
                continue;
            }
            prop_assert!(!route.is_empty());
            prop_assert_eq!(route[0].0, src.0);
            prop_assert_eq!(route.last().unwrap().1, dst.0);
            for w in route.windows(2) {
                prop_assert_eq!(w[0].1, w[1].0, "disconnected chain");
            }
            let mut links = route.clone();
            let len = links.len();
            links.sort_unstable();
            links.dedup();
            prop_assert_eq!(links.len(), len, "repeated link in route");
            for &(a, b) in &route {
                prop_assert!(a < nodes && b < nodes);
            }
        }
    }

    /// Ring routes never exceed half the ring; mesh routes never exceed
    /// (cols-1) + (rows-1).
    #[test]
    fn route_lengths_respect_diameters(nodes in 2u32..40, src in 0u32..40, dst in 0u32..40) {
        let src = NodeId(src % nodes);
        let dst = NodeId(dst % nodes);
        let ring = Topology::Ring.hops(src, dst, nodes);
        prop_assert!(ring <= nodes / 2, "ring {} hops of {}", ring, nodes);
        let (cols, rows) = Topology::mesh_dims(nodes);
        let mesh = Topology::Mesh2D.hops(src, dst, nodes);
        prop_assert!(mesh <= (cols - 1) + (rows - 1), "mesh {} hops", mesh);
    }

    /// Hop counts are symmetric (XY and YX mesh paths have equal length
    /// even though the links differ).
    #[test]
    fn hop_counts_are_symmetric(nodes in 2u32..40, a in 0u32..40, b in 0u32..40) {
        let a = NodeId(a % nodes);
        let b = NodeId(b % nodes);
        for topo in [Topology::Ring, Topology::Mesh2D] {
            prop_assert_eq!(topo.hops(a, b, nodes), topo.hops(b, a, nodes));
        }
    }
}
