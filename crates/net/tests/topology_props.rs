//! Randomised property tests of the topology extension: route validity
//! and metric sanity for arbitrary machine sizes and endpoints, generated
//! with the engine's seedable PRNG for exact reproducibility.

use nisim_engine::SplitMix64;
use nisim_net::topology::Topology;
use nisim_net::NodeId;

/// Every route is a connected chain from src to dst with no repeated
/// links, and its endpoints stay in range.
#[test]
fn routes_are_valid_chains() {
    let mut rng = SplitMix64::new(0x707);
    for _ in 0..256 {
        let nodes = 2 + rng.gen_range(38) as u32;
        let src = NodeId(rng.gen_range(nodes as u64) as u32);
        let dst = NodeId(rng.gen_range(nodes as u64) as u32);
        for topo in [Topology::Ring, Topology::Mesh2D] {
            let route = topo.route(src, dst, nodes);
            if src == dst {
                assert!(route.is_empty());
                continue;
            }
            assert!(!route.is_empty());
            assert_eq!(route[0].0, src.0);
            assert_eq!(route.last().unwrap().1, dst.0);
            for w in route.windows(2) {
                assert_eq!(w[0].1, w[1].0, "disconnected chain");
            }
            let mut links = route.clone();
            let len = links.len();
            links.sort_unstable();
            links.dedup();
            assert_eq!(links.len(), len, "repeated link in route");
            for &(a, b) in &route {
                assert!(a < nodes && b < nodes);
            }
        }
    }
}

/// Ring routes never exceed half the ring; mesh routes never exceed
/// (cols-1) + (rows-1). Exhaustive over all sizes up to 40 nodes.
#[test]
fn route_lengths_respect_diameters() {
    for nodes in 2u32..40 {
        for s in 0..nodes {
            for d in 0..nodes {
                let src = NodeId(s);
                let dst = NodeId(d);
                let ring = Topology::Ring.hops(src, dst, nodes);
                assert!(ring <= nodes / 2, "ring {} hops of {}", ring, nodes);
                let (cols, rows) = Topology::mesh_dims(nodes);
                let mesh = Topology::Mesh2D.hops(src, dst, nodes);
                assert!(mesh <= (cols - 1) + (rows - 1), "mesh {} hops", mesh);
            }
        }
    }
}

/// Hop counts are symmetric (XY and YX mesh paths have equal length even
/// though the links differ).
#[test]
fn hop_counts_are_symmetric() {
    for nodes in 2u32..40 {
        for a in 0..nodes {
            for b in 0..nodes {
                let a = NodeId(a);
                let b = NodeId(b);
                for topo in [Topology::Ring, Topology::Mesh2D] {
                    assert_eq!(topo.hops(a, b, nodes), topo.hops(b, a, nodes));
                }
            }
        }
    }
}
