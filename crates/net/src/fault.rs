//! Deterministic fault injection for the network substrate.
//!
//! The paper's network abstraction (§5.1.2) is loss-free: every injected
//! message arrives after a constant latency. A [`FaultPlan`] perturbs
//! that ideal wire — dropping, duplicating, corrupting, or delaying
//! messages, and blacking out links over scheduled windows — so the
//! reliability layer ([`crate::reliability`]) and the machine's
//! retransmit machinery can be exercised and measured.
//!
//! Everything is driven by one seedable [`SplitMix64`] stream. Because
//! the simulator itself is deterministic, the sequence of calls into the
//! plan is deterministic too, so a given seed reproduces the exact same
//! fault schedule run after run.

use std::collections::BTreeMap;
use std::fmt;

use nisim_engine::json::{u64_from_hex, u64_hex};
use nisim_engine::{Dur, Json, SplitMix64, Time};

use crate::msg::NodeId;

/// A scheduled window during which a link (or the whole fabric) is down.
///
/// Messages injected while a window is active are silently dropped —
/// they never reach the destination, exactly like a cable pull.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DownWindow {
    /// First instant of the outage (inclusive).
    pub start: Time,
    /// End of the outage (exclusive).
    pub end: Time,
    /// Restrict the outage to traffic touching this node; `None` takes
    /// the whole fabric down.
    pub node: Option<NodeId>,
}

impl DownWindow {
    /// A whole-fabric outage over `[start, end)`.
    pub fn fabric(start: Time, end: Time) -> Self {
        DownWindow {
            start,
            end,
            node: None,
        }
    }

    /// True if a message from `src` to `dst` injected at `now` is lost
    /// to this outage.
    pub fn swallows(&self, now: Time, src: NodeId, dst: NodeId) -> bool {
        if now < self.start || now >= self.end {
            return false;
        }
        match self.node {
            None => true,
            Some(n) => n == src || n == dst,
        }
    }
}

/// A scheduled node crash: over `[start, end)` the node is dead — all
/// traffic touching it is lost, and at `start` the machine discards the
/// node's in-flight NI state (receive queue, partially assembled
/// transfers). Unlike a [`DownWindow`], which only silences the wire, a
/// crash also wipes volatile state, so recovery exercises the
/// retransmit/dedup path end to end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashWindow {
    /// First instant of the crash (inclusive).
    pub start: Time,
    /// End of the crash — the node warm-restarts here (exclusive).
    pub end: Time,
    /// The node that crashes.
    pub node: NodeId,
}

impl CrashWindow {
    /// True if a message from `src` to `dst` injected at `now` is lost
    /// because one endpoint is crashed.
    pub fn swallows(&self, now: Time, src: NodeId, dst: NodeId) -> bool {
        now >= self.start && now < self.end && (self.node == src || self.node == dst)
    }
}

/// Knobs of the fault model. All default to "off": the default config
/// injects no faults and perturbs nothing.
#[derive(Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that a message vanishes in flight.
    pub drop_p: f64,
    /// Probability that a message is delivered twice.
    pub dup_p: f64,
    /// Probability that a message arrives with a corrupted payload. A
    /// corrupted message still consumes wire and ejection bandwidth; the
    /// receiver detects it (checksum) and discards it, so end-to-end it
    /// behaves like a late drop.
    pub corrupt_p: f64,
    /// Maximum extra latency added to a delivery, drawn uniformly from
    /// `[0, jitter_max]`.
    pub jitter_max: Dur,
    /// Scheduled outages.
    pub down: Vec<DownWindow>,
    /// Per-link drop probability overrides, keyed by `(src, dst)`. Links
    /// without an entry use [`drop_p`](FaultConfig::drop_p).
    pub link_drop: BTreeMap<(NodeId, NodeId), f64>,
    /// Scheduled node crashes.
    pub crash: Vec<CrashWindow>,
    /// Seed of the fault stream.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_p: 0.0,
            dup_p: 0.0,
            corrupt_p: 0.0,
            jitter_max: Dur::ZERO,
            down: Vec::new(),
            link_drop: BTreeMap::new(),
            crash: Vec::new(),
            seed: 0xFA_17,
        }
    }
}

impl fmt::Debug for FaultConfig {
    /// Hand-rolled so the representation — which feeds the config
    /// fingerprint guarding checkpoints and golden records — is stable:
    /// the `crash` field only appears when crashes are scheduled, keeping
    /// crash-free configs byte-identical to those of builds that predate
    /// the field.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("FaultConfig");
        d.field("drop_p", &self.drop_p)
            .field("dup_p", &self.dup_p)
            .field("corrupt_p", &self.corrupt_p)
            .field("jitter_max", &self.jitter_max)
            .field("down", &self.down)
            .field("link_drop", &self.link_drop);
        if !self.crash.is_empty() {
            d.field("crash", &self.crash);
        }
        d.field("seed", &self.seed).finish()
    }
}

impl FaultConfig {
    /// True if any knob can actually perturb traffic. When inactive the
    /// machine skips the fault layer entirely, so default-configured
    /// runs execute the exact same event sequence as a build without
    /// fault injection.
    pub fn is_active(&self) -> bool {
        self.drop_p > 0.0
            || self.dup_p > 0.0
            || self.corrupt_p > 0.0
            || self.jitter_max > Dur::ZERO
            || !self.down.is_empty()
            || !self.crash.is_empty()
            || self.link_drop.values().any(|&p| p > 0.0)
    }

    /// Effective drop probability on the `src -> dst` link.
    pub fn drop_p_for(&self, src: NodeId, dst: NodeId) -> f64 {
        self.link_drop
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.drop_p)
    }
}

/// One physical delivery of an injected message (a duplicated message
/// yields two of these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Delivery {
    /// Extra latency beyond the configured wire latency.
    pub extra_delay: Dur,
    /// True if the payload was corrupted in flight; the receiver must
    /// discard it after ejection.
    pub corrupted: bool,
}

/// Counters of what the fault layer did to traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages offered to the fault layer.
    pub offered: u64,
    /// Messages dropped by the random drop draw.
    pub dropped: u64,
    /// Messages swallowed by a scheduled outage.
    pub blackholed: u64,
    /// Extra copies created by duplication.
    pub duplicated: u64,
    /// Deliveries whose payload was corrupted.
    pub corrupted: u64,
    /// Deliveries that received nonzero jitter.
    pub jittered: u64,
}

impl FaultStats {
    /// Messages that never produced a clean delivery (dropped,
    /// blackholed — corruption is counted at the receiver).
    pub fn lost(&self) -> u64 {
        self.dropped + self.blackholed
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "offered {} dropped {} blackholed {} duplicated {} corrupted {} jittered {}",
            self.offered,
            self.dropped,
            self.blackholed,
            self.duplicated,
            self.corrupted,
            self.jittered
        )
    }
}

/// The stateful fault injector: a [`FaultConfig`] plus the PRNG stream
/// and counters. One plan serves the whole machine.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SplitMix64,
    stats: FaultStats,
    /// Messages swallowed by a scheduled outage or crash, per source
    /// node — lets the stall report say *whose* traffic an outage ate.
    swallowed: BTreeMap<NodeId, u64>,
}

impl FaultPlan {
    /// Builds a plan; the PRNG is seeded from `cfg.seed`.
    pub fn new(cfg: FaultConfig) -> Self {
        let rng = SplitMix64::new(cfg.seed);
        FaultPlan {
            cfg,
            rng,
            stats: FaultStats::default(),
            swallowed: BTreeMap::new(),
        }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// True if the plan can perturb traffic at all.
    pub fn is_active(&self) -> bool {
        self.cfg.is_active()
    }

    /// Messages from `src` swallowed by scheduled outages or crashes
    /// so far.
    pub fn swallowed_from(&self, src: NodeId) -> u64 {
        self.swallowed.get(&src).copied().unwrap_or(0)
    }

    /// True if `node` is crashed at `now`.
    pub fn crashed_at(&self, now: Time, node: NodeId) -> bool {
        self.cfg
            .crash
            .iter()
            .any(|c| c.node == node && now >= c.start && now < c.end)
    }

    /// Decides the fate of a message injected at `now` on `src -> dst`.
    ///
    /// Returns the physical deliveries the wire should perform: an empty
    /// vector means the message was lost, two entries mean it was
    /// duplicated. Each delivery carries its own jitter and corruption
    /// verdict.
    pub fn deliveries(&mut self, now: Time, src: NodeId, dst: NodeId) -> Vec<Delivery> {
        self.stats.offered += 1;
        if !self.cfg.is_active() {
            return vec![Delivery::default()];
        }
        if self.cfg.down.iter().any(|w| w.swallows(now, src, dst))
            || self.cfg.crash.iter().any(|c| c.swallows(now, src, dst))
        {
            self.stats.blackholed += 1;
            *self.swallowed.entry(src).or_insert(0) += 1;
            return Vec::new();
        }
        let drop_p = self.cfg.drop_p_for(src, dst);
        if drop_p > 0.0 && self.rng.gen_bool(drop_p) {
            self.stats.dropped += 1;
            return Vec::new();
        }
        let mut out = vec![self.one_delivery()];
        if self.cfg.dup_p > 0.0 && self.rng.gen_bool(self.cfg.dup_p) {
            self.stats.duplicated += 1;
            out.push(self.one_delivery());
        }
        out
    }

    fn one_delivery(&mut self) -> Delivery {
        let corrupted = self.cfg.corrupt_p > 0.0 && self.rng.gen_bool(self.cfg.corrupt_p);
        if corrupted {
            self.stats.corrupted += 1;
        }
        let extra_delay = if self.cfg.jitter_max > Dur::ZERO {
            let span = self.cfg.jitter_max.as_ns() + 1;
            let j = Dur::ns(self.rng.gen_range(span));
            if j > Dur::ZERO {
                self.stats.jittered += 1;
            }
            j
        } else {
            Dur::ZERO
        };
        Delivery {
            extra_delay,
            corrupted,
        }
    }

    /// Serialises the PRNG position, the counters and the per-source
    /// swallow map for checkpointing. The config is not included — the
    /// restoring side must build the plan from the same [`FaultConfig`].
    pub fn snapshot(&self) -> Json {
        let swallowed = Json::Arr(
            self.swallowed
                .iter()
                .map(|(src, n)| Json::Arr(vec![Json::from(src.0 as u64), Json::from(*n)]))
                .collect(),
        );
        Json::obj()
            .set("rng", u64_hex(self.rng.state()))
            .set("offered", self.stats.offered)
            .set("dropped", self.stats.dropped)
            .set("blackholed", self.stats.blackholed)
            .set("duplicated", self.stats.duplicated)
            .set("corrupted", self.stats.corrupted)
            .set("jittered", self.stats.jittered)
            .set("swallowed", swallowed)
    }

    /// Restores state captured by [`FaultPlan::snapshot`]. Returns
    /// `false` on shape mismatch.
    pub fn restore(&mut self, v: &Json) -> bool {
        let Some(rng) = v.get("rng").and_then(Json::as_str).and_then(u64_from_hex) else {
            return false;
        };
        let field = |key: &str| v.get(key).and_then(Json::as_u64);
        let (Some(offered), Some(dropped), Some(blackholed)) =
            (field("offered"), field("dropped"), field("blackholed"))
        else {
            return false;
        };
        let (Some(duplicated), Some(corrupted), Some(jittered)) =
            (field("duplicated"), field("corrupted"), field("jittered"))
        else {
            return false;
        };
        let Some(pairs) = v.get("swallowed").and_then(Json::as_arr) else {
            return false;
        };
        let mut swallowed = BTreeMap::new();
        for pair in pairs {
            let Some([src, n]) = pair.as_arr().and_then(|p| <&[Json; 2]>::try_from(p).ok()) else {
                return false;
            };
            let (Some(src), Some(n)) = (src.as_u64(), n.as_u64()) else {
                return false;
            };
            if src > u32::MAX as u64 {
                return false;
            }
            swallowed.insert(NodeId(src as u32), n);
        }
        self.rng = SplitMix64::from_state(rng);
        self.stats = FaultStats {
            offered,
            dropped,
            blackholed,
            duplicated,
            corrupted,
            jittered,
        };
        self.swallowed = swallowed;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: NodeId = NodeId(0);
    const B: NodeId = NodeId(1);

    #[test]
    fn default_config_is_inert() {
        let cfg = FaultConfig::default();
        assert!(!cfg.is_active());
        let mut plan = FaultPlan::new(cfg);
        for i in 0..100 {
            let d = plan.deliveries(Time::from_ns(i), A, B);
            assert_eq!(d, vec![Delivery::default()]);
        }
        assert_eq!(plan.stats().lost(), 0);
        assert_eq!(plan.stats().offered, 100);
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig {
            drop_p: 0.3,
            dup_p: 0.2,
            corrupt_p: 0.1,
            jitter_max: Dur::ns(50),
            ..FaultConfig::default()
        };
        let mut p1 = FaultPlan::new(cfg.clone());
        let mut p2 = FaultPlan::new(cfg);
        for i in 0..500 {
            let now = Time::from_ns(i * 13);
            assert_eq!(p1.deliveries(now, A, B), p2.deliveries(now, A, B));
        }
        assert_eq!(p1.stats(), p2.stats());
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let cfg = FaultConfig {
            drop_p: 0.25,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(cfg);
        let mut lost = 0u64;
        for i in 0..4000 {
            if plan.deliveries(Time::from_ns(i), A, B).is_empty() {
                lost += 1;
            }
        }
        assert!((800..1200).contains(&lost), "lost {lost} of 4000");
        assert_eq!(plan.stats().dropped, lost);
    }

    #[test]
    fn down_window_swallows_everything_in_span() {
        let cfg = FaultConfig {
            down: vec![DownWindow::fabric(Time::from_ns(100), Time::from_ns(200))],
            ..FaultConfig::default()
        };
        assert!(cfg.is_active());
        let mut plan = FaultPlan::new(cfg);
        assert!(!plan.deliveries(Time::from_ns(99), A, B).is_empty());
        assert!(plan.deliveries(Time::from_ns(100), A, B).is_empty());
        assert!(plan.deliveries(Time::from_ns(199), A, B).is_empty());
        assert!(!plan.deliveries(Time::from_ns(200), A, B).is_empty());
        assert_eq!(plan.stats().blackholed, 2);
    }

    #[test]
    fn node_scoped_window_spares_other_links() {
        let w = DownWindow {
            start: Time::ZERO,
            end: Time::from_ns(1000),
            node: Some(B),
        };
        assert!(w.swallows(Time::from_ns(5), A, B));
        assert!(w.swallows(Time::from_ns(5), B, A));
        assert!(!w.swallows(Time::from_ns(5), A, NodeId(2)));
    }

    #[test]
    fn per_link_override_beats_global() {
        let mut link_drop = BTreeMap::new();
        link_drop.insert((A, B), 1.0);
        let cfg = FaultConfig {
            drop_p: 0.0,
            link_drop,
            ..FaultConfig::default()
        };
        assert!(cfg.is_active());
        assert_eq!(cfg.drop_p_for(A, B), 1.0);
        assert_eq!(cfg.drop_p_for(B, A), 0.0);
        let mut plan = FaultPlan::new(cfg);
        assert!(plan.deliveries(Time::ZERO, A, B).is_empty());
        assert!(!plan.deliveries(Time::ZERO, B, A).is_empty());
    }

    #[test]
    fn duplication_yields_two_deliveries() {
        let cfg = FaultConfig {
            dup_p: 1.0,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(cfg);
        let d = plan.deliveries(Time::ZERO, A, B);
        assert_eq!(d.len(), 2);
        assert_eq!(plan.stats().duplicated, 1);
    }

    #[test]
    fn jitter_stays_in_bounds() {
        let cfg = FaultConfig {
            jitter_max: Dur::ns(64),
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(cfg);
        for i in 0..1000 {
            for d in plan.deliveries(Time::from_ns(i), A, B) {
                assert!(d.extra_delay <= Dur::ns(64));
            }
        }
        assert!(plan.stats().jittered > 0);
    }

    #[test]
    fn crash_window_swallows_and_counts_per_source() {
        let cfg = FaultConfig {
            crash: vec![CrashWindow {
                start: Time::from_ns(100),
                end: Time::from_ns(200),
                node: B,
            }],
            ..FaultConfig::default()
        };
        assert!(cfg.is_active());
        let mut plan = FaultPlan::new(cfg);
        assert!(!plan.deliveries(Time::from_ns(99), A, B).is_empty());
        assert!(plan.deliveries(Time::from_ns(100), A, B).is_empty());
        assert!(plan.deliveries(Time::from_ns(150), B, A).is_empty());
        assert!(!plan.deliveries(Time::from_ns(150), A, NodeId(2)).is_empty());
        assert!(!plan.deliveries(Time::from_ns(200), A, B).is_empty());
        assert_eq!(plan.stats().blackholed, 2);
        assert_eq!(plan.swallowed_from(A), 1);
        assert_eq!(plan.swallowed_from(B), 1);
        assert!(plan.crashed_at(Time::from_ns(150), B));
        assert!(!plan.crashed_at(Time::from_ns(150), A));
        assert!(!plan.crashed_at(Time::from_ns(200), B));
    }

    #[test]
    fn debug_repr_omits_empty_crash_list() {
        // The Debug form feeds the config fingerprint; a crash-free
        // config must render exactly as it did before the field existed.
        let plain = format!("{:?}", FaultConfig::default());
        assert!(!plain.contains("crash"));
        let crashing = format!(
            "{:?}",
            FaultConfig {
                crash: vec![CrashWindow {
                    start: Time::ZERO,
                    end: Time::from_ns(1),
                    node: A,
                }],
                ..FaultConfig::default()
            }
        );
        assert!(crashing.contains("crash"));
        assert_ne!(plain, crashing);
    }

    #[test]
    fn plan_snapshot_resumes_rng_stream() {
        let cfg = FaultConfig {
            drop_p: 0.3,
            dup_p: 0.2,
            corrupt_p: 0.1,
            jitter_max: Dur::ns(50),
            down: vec![DownWindow::fabric(Time::from_ns(40), Time::from_ns(80))],
            ..FaultConfig::default()
        };
        let mut golden = FaultPlan::new(cfg.clone());
        let mut cut = FaultPlan::new(cfg.clone());
        for i in 0..200 {
            let now = Time::from_ns(i * 7);
            golden.deliveries(now, A, B);
            cut.deliveries(now, A, B);
        }
        let snap = cut.snapshot();
        let mut resumed = FaultPlan::new(cfg);
        assert!(resumed.restore(&snap));
        assert_eq!(resumed.stats(), cut.stats());
        for i in 200..400 {
            let now = Time::from_ns(i * 7);
            assert_eq!(golden.deliveries(now, A, B), resumed.deliveries(now, A, B));
        }
        assert_eq!(golden.stats(), resumed.stats());
        assert_eq!(golden.swallowed_from(A), resumed.swallowed_from(A));
        assert!(!resumed.restore(&Json::obj().set("rng", "xyz")));
    }

    #[test]
    fn corruption_marks_but_delivers() {
        let cfg = FaultConfig {
            corrupt_p: 1.0,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(cfg);
        let d = plan.deliveries(Time::ZERO, A, B);
        assert_eq!(d.len(), 1);
        assert!(d[0].corrupted);
    }
}
