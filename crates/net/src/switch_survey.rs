//! Table 1 of the paper: buffering available between an input port and an
//! output port in five commercial network switches/routers of the era.
//!
//! The table motivates the buffering half of the study: switches provide
//! only a few hundred bytes, so an NI that fails to drain the network
//! quickly causes back-pressure (or message drops on Myrinet-style
//! networks). The data is literature/personal-communication material, not
//! simulation output; it is reproduced here so the `table1` harness binary
//! can regenerate the table.

/// One row of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SwitchBuffering {
    /// Switch or router name.
    pub name: &'static str,
    /// Description of the maximum buffering between an input and an
    /// output port.
    pub max_buffering: &'static str,
    /// Representative per-port buffer bytes (for plots; the shared-pool
    /// cases use their dedicated component).
    pub approx_bytes: u32,
}

/// The five switches of Table 1.
pub const SWITCH_SURVEY: [SwitchBuffering; 5] = [
    SwitchBuffering {
        name: "Cray T3E router",
        max_buffering: "105 bytes per non-adaptive virtual channel",
        approx_bytes: 105,
    },
    SwitchBuffering {
        name: "IBM Vulcan switch (SP2)",
        max_buffering: "31 bytes + 1 Kbyte buffer pool shared between four ports",
        approx_bytes: 31,
    },
    SwitchBuffering {
        name: "Myricom M2M switch",
        max_buffering: "20 bytes",
        approx_bytes: 20,
    },
    SwitchBuffering {
        name: "SGI Spider/Craylink switch",
        max_buffering: "256 bytes per virtual channel",
        approx_bytes: 256,
    },
    SwitchBuffering {
        name: "TMC CM-5 network router",
        max_buffering: "100 bytes",
        approx_bytes: 100,
    },
];

/// The largest per-port buffering in the survey, in bytes.
///
/// Even the roomiest switch buffers less than two of the study's 256-byte
/// network messages — the quantitative core of the paper's argument that
/// NIs cannot rely on the network for buffering.
pub fn max_survey_bytes() -> u32 {
    SWITCH_SURVEY
        .iter()
        .map(|s| s.approx_bytes)
        .max()
        .expect("survey is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_five_switches() {
        assert_eq!(SWITCH_SURVEY.len(), 5);
    }

    #[test]
    fn max_is_spider() {
        assert_eq!(max_survey_bytes(), 256);
    }

    #[test]
    fn all_buffering_under_two_messages() {
        // The argument of §3: switch buffering < 2 x 256 B messages.
        for s in SWITCH_SURVEY {
            assert!(s.approx_bytes < 512, "{} buffers too much", s.name);
        }
    }
}
