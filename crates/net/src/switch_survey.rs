//! Table 1 of the paper: buffering available between an input port and an
//! output port in five commercial network switches/routers of the era.
//!
//! The table motivates the buffering half of the study: switches provide
//! only a few hundred bytes, so an NI that fails to drain the network
//! quickly causes back-pressure (or message drops on Myrinet-style
//! networks). The data is literature/personal-communication material, not
//! simulation output; it is reproduced here so the `table1` harness binary
//! can regenerate the table.

/// One row of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SwitchBuffering {
    /// Switch or router name.
    pub name: &'static str,
    /// Description of the maximum buffering between an input and an
    /// output port.
    pub max_buffering: &'static str,
    /// Representative per-port buffer bytes (for plots; the shared-pool
    /// cases use their dedicated component).
    pub approx_bytes: u32,
}

/// The five switches of Table 1.
pub const SWITCH_SURVEY: [SwitchBuffering; 5] = [
    SwitchBuffering {
        name: "Cray T3E router",
        max_buffering: "105 bytes per non-adaptive virtual channel",
        approx_bytes: 105,
    },
    SwitchBuffering {
        name: "IBM Vulcan switch (SP2)",
        max_buffering: "31 bytes + 1 Kbyte buffer pool shared between four ports",
        approx_bytes: 31,
    },
    SwitchBuffering {
        name: "Myricom M2M switch",
        max_buffering: "20 bytes",
        approx_bytes: 20,
    },
    SwitchBuffering {
        name: "SGI Spider/Craylink switch",
        max_buffering: "256 bytes per virtual channel",
        approx_bytes: 256,
    },
    SwitchBuffering {
        name: "TMC CM-5 network router",
        max_buffering: "100 bytes",
        approx_bytes: 100,
    },
];

/// Modern fabric counterparts (extension; ROADMAP item 3): the switches
/// behind the RDMA queue-pair and connectionless URMA design points.
/// Per-port buffering grew by two orders of magnitude, but so did link
/// rate — at 100 Gb/s a 64 KB virtual lane holds ~5 µs of wire time, so
/// the paper's argument survives: the endpoint NI, not the fabric, must
/// absorb bursts (which is why rdma-qp caches QP state on the NI and
/// urma spills straight to host memory).
pub const MODERN_SWITCH_SURVEY: [SwitchBuffering; 2] = [
    SwitchBuffering {
        name: "InfiniBand EDR switch (Switch-IB class)",
        max_buffering: "64 Kbyte per virtual lane, credit-based flow control",
        approx_bytes: 65_536,
    },
    SwitchBuffering {
        name: "Shallow-buffer 100GbE ToR (Tomahawk class)",
        max_buffering: "16 Mbyte packet buffer shared between 128 ports",
        approx_bytes: 131_072,
    },
];

/// The largest per-port buffering in the survey, in bytes.
///
/// Even the roomiest switch buffers less than two of the study's 256-byte
/// network messages — the quantitative core of the paper's argument that
/// NIs cannot rely on the network for buffering.
pub fn max_survey_bytes() -> u32 {
    SWITCH_SURVEY
        .iter()
        .map(|s| s.approx_bytes)
        .max()
        .expect("survey is non-empty")
}

/// Wire time, in nanoseconds, that `bytes` of buffering covers at
/// `gbps` gigabits per second — the unit that makes the era-spanning
/// comparison fair.
pub fn buffer_wire_time_ns(bytes: u32, gbps: u32) -> u64 {
    (u64::from(bytes) * 8) / u64::from(gbps).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_five_switches() {
        assert_eq!(SWITCH_SURVEY.len(), 5);
    }

    #[test]
    fn max_is_spider() {
        assert_eq!(max_survey_bytes(), 256);
    }

    #[test]
    fn all_buffering_under_two_messages() {
        // The argument of §3: switch buffering < 2 x 256 B messages.
        for s in SWITCH_SURVEY {
            assert!(s.approx_bytes < 512, "{} buffers too much", s.name);
        }
    }

    #[test]
    fn modern_switches_still_buffer_microseconds_not_messages() {
        // The modern rows buffer far more bytes, but at 100 Gb/s that is
        // still only single-digit microseconds of wire time — the same
        // order as the 1998 rows at ~1 Gb/s. The endpoint still pays.
        for s in MODERN_SWITCH_SURVEY {
            let ns = buffer_wire_time_ns(s.approx_bytes, 100);
            assert!(
                ns < 12_000,
                "{} covers {ns} ns of wire time — no longer shallow",
                s.name
            );
        }
        // Normalised to wire time, the eras are within a small factor of
        // each other: 64 KB at 100 Gb/s ≈ 2.5x the Spider's 256 B at
        // 1 Gb/s, not the 256x the raw byte counts suggest.
        let era_1998 = buffer_wire_time_ns(max_survey_bytes(), 1);
        let modern = buffer_wire_time_ns(MODERN_SWITCH_SURVEY[0].approx_bytes, 100);
        assert!(
            modern < 4 * era_1998,
            "modern per-lane wire time {modern} ns should stay within 4x of {era_1998} ns"
        );
    }
}
