//! End-to-end reliability over a faulty wire.
//!
//! The paper's return-to-sender flow control (§5.1.2) already guarantees
//! delivery *given a loss-free network*: a rejected message is returned
//! on a guaranteed channel and retried. Fault injection
//! ([`crate::fault`]) breaks that premise — a dropped message produces
//! neither an ack nor a return, and a duplicated one arrives twice.
//!
//! This module supplies the missing pieces, deliberately split from the
//! flow-control layer so the two compose instead of replacing each
//! other:
//!
//! * per-`(sender, receiver)` sequence numbers ([`SenderReliability`]),
//! * ack-timeout–driven retransmission with exponential backoff and a
//!   retry cap ([`ReliabilityConfig::timeout_for`]),
//! * receiver-side duplicate suppression ([`ReceiverDedup`]) so
//!   retransmits and wire duplicates deliver exactly once.
//!
//! The layer is off by default ([`ReliabilityConfig::enabled`]); when
//! disabled no timers are scheduled and no sequence state is consulted,
//! so fault-free runs are bit-identical to builds without it.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use nisim_engine::metrics::{Component, ComponentCycles};
use nisim_engine::{Dur, Json};

use crate::msg::NodeId;

/// A per-`(sender, receiver)` message sequence number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNo(pub u64);

impl fmt::Debug for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq{}", self.0)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Tuning of the retransmission machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Master switch. Disabled by default: the machine then schedules no
    /// ack timers and performs no dedup, preserving the exact event
    /// sequence of the original loss-free simulator.
    pub enabled: bool,
    /// Base ack timeout (attempt 0). Should comfortably exceed one
    /// round trip; 4 µs ≈ 20× the paper's 190 ns best-case one-way.
    pub ack_timeout: Dur,
    /// Ceiling of the exponential backoff.
    pub timeout_max: Dur,
    /// Retransmissions attempted before the sender gives up and reports
    /// the fragment as undeliverable (the machine then surfaces a
    /// `RetryCapExhausted` violation and the watchdog declares a stall
    /// instead of spinning forever).
    pub max_retries: u32,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            enabled: false,
            ack_timeout: Dur::us(4),
            timeout_max: Dur::us(64),
            max_retries: 10,
        }
    }
}

impl ReliabilityConfig {
    /// An enabled config with the default timing.
    pub fn on() -> Self {
        ReliabilityConfig {
            enabled: true,
            ..ReliabilityConfig::default()
        }
    }

    /// The ack timeout for retransmission attempt `attempt` (0-based):
    /// `ack_timeout · 2^attempt`, capped at `timeout_max`.
    ///
    /// `checked_shl` alone is not enough: it only fails for shifts
    /// ≥ 64, while smaller shifts silently drop high bits and would
    /// wrap the timeout back toward zero. The round-trip shift detects
    /// that and saturates instead.
    pub fn timeout_for(&self, attempt: u32) -> Dur {
        let base = self.ack_timeout.as_ns();
        let shifted = base
            .checked_shl(attempt)
            .filter(|s| s >> attempt == base)
            .unwrap_or(u64::MAX);
        Dur::ns(shifted.min(self.timeout_max.as_ns().max(base)))
    }

    /// The longest timeout the backoff can ever produce — the ceiling the
    /// exponential schedule saturates at. This is the far edge of the
    /// timer horizon the scheduler must cover for reliability traffic.
    pub fn max_timeout(&self) -> Dur {
        Dur::ns(self.timeout_max.as_ns().max(self.ack_timeout.as_ns()))
    }
}

/// Sender-side sequence allocation: one monotone counter per receiver.
#[derive(Clone, Debug, Default)]
pub struct SenderReliability {
    next: BTreeMap<NodeId, u64>,
}

impl SenderReliability {
    /// Allocates the next sequence number for traffic to `dst`.
    pub fn next_seq(&mut self, dst: NodeId) -> SeqNo {
        let c = self.next.entry(dst).or_insert(0);
        let s = *c;
        *c += 1;
        SeqNo(s)
    }

    /// Sequence numbers handed out towards `dst` so far.
    pub fn issued(&self, dst: NodeId) -> u64 {
        self.next.get(&dst).copied().unwrap_or(0)
    }

    /// Serialises the per-destination counters for checkpointing.
    pub fn snapshot(&self) -> Json {
        Json::Arr(
            self.next
                .iter()
                .map(|(dst, n)| Json::Arr(vec![Json::from(dst.0 as u64), Json::from(*n)]))
                .collect(),
        )
    }

    /// Restores counters captured by [`SenderReliability::snapshot`].
    /// Returns `false` on shape mismatch.
    pub fn restore(&mut self, v: &Json) -> bool {
        let Some(pairs) = v.as_arr() else {
            return false;
        };
        let mut next = BTreeMap::new();
        for pair in pairs {
            let Some([dst, n]) = pair.as_arr().and_then(|p| <&[Json; 2]>::try_from(p).ok()) else {
                return false;
            };
            let (Some(dst), Some(n)) = (dst.as_u64(), n.as_u64()) else {
                return false;
            };
            if dst > u32::MAX as u64 {
                return false;
            }
            next.insert(NodeId(dst as u32), n);
        }
        self.next = next;
        true
    }
}

/// Receiver-side duplicate suppression, one window per sender.
///
/// Each window keeps a `floor` (every sequence below it has been
/// accepted) plus the sparse set of accepted sequences at or above it,
/// compacted whenever the floor advances. Out-of-order arrival is fine;
/// memory stays proportional to the reorder window, not the run length.
#[derive(Clone, Debug, Default)]
pub struct ReceiverDedup {
    windows: BTreeMap<NodeId, SeqWindow>,
}

#[derive(Clone, Debug, Default)]
struct SeqWindow {
    floor: u64,
    seen: BTreeSet<u64>,
}

impl ReceiverDedup {
    /// Records an arrival of `seq` from `src`. Returns `true` if this is
    /// the first time (deliver it), `false` if it is a duplicate
    /// (discard it, but still ack — the sender's ack may have been the
    /// thing that was lost).
    pub fn accept(&mut self, src: NodeId, seq: SeqNo) -> bool {
        let w = self.windows.entry(src).or_default();
        if seq.0 < w.floor || !w.seen.insert(seq.0) {
            return false;
        }
        while w.seen.remove(&w.floor) {
            w.floor += 1;
        }
        true
    }

    /// True if `seq` from `src` has already been accepted.
    pub fn already_seen(&self, src: NodeId, seq: SeqNo) -> bool {
        self.windows
            .get(&src)
            .is_some_and(|w| seq.0 < w.floor || w.seen.contains(&seq.0))
    }

    /// Entries currently tracked above the floor for `src` (diagnostic:
    /// the size of the reorder window).
    pub fn pending_window(&self, src: NodeId) -> usize {
        self.windows.get(&src).map_or(0, |w| w.seen.len())
    }

    /// Serialises every window — floor plus the sparse accepted set —
    /// for checkpointing.
    pub fn snapshot(&self) -> Json {
        Json::Arr(
            self.windows
                .iter()
                .map(|(src, w)| {
                    let seen = Json::Arr(w.seen.iter().map(|&s| Json::from(s)).collect());
                    Json::Arr(vec![Json::from(src.0 as u64), Json::from(w.floor), seen])
                })
                .collect(),
        )
    }

    /// Restores windows captured by [`ReceiverDedup::snapshot`]. Returns
    /// `false` on shape mismatch.
    pub fn restore(&mut self, v: &Json) -> bool {
        let Some(entries) = v.as_arr() else {
            return false;
        };
        let mut windows = BTreeMap::new();
        for entry in entries {
            let Some([src, floor, seen]) =
                entry.as_arr().and_then(|p| <&[Json; 3]>::try_from(p).ok())
            else {
                return false;
            };
            let (Some(src), Some(floor), Some(seen)) =
                (src.as_u64(), floor.as_u64(), seen.as_arr())
            else {
                return false;
            };
            if src > u32::MAX as u64 {
                return false;
            }
            let mut set = BTreeSet::new();
            for s in seen {
                let Some(s) = s.as_u64() else {
                    return false;
                };
                set.insert(s);
            }
            windows.insert(NodeId(src as u32), SeqWindow { floor, seen: set });
        }
        self.windows = windows;
        true
    }
}

/// Counters of the reliability layer's activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelStats {
    /// Ack timeouts that fired and triggered a retransmission.
    pub retransmits: u64,
    /// Arrivals discarded as duplicates (wire duplication or a
    /// retransmit racing its original).
    pub dup_discards: u64,
    /// Arrivals discarded because the payload was corrupted in flight.
    pub corrupt_discards: u64,
    /// Fragments abandoned after the retry cap.
    pub gave_up: u64,
    /// In-flight receive state (queued arrivals, partial reassemblies)
    /// wiped by a node crash. Each wiped fragment is recovered by the
    /// sender's retransmit timer or ends up in `gave_up` — never both.
    pub crash_lost: u64,
}

impl RelStats {
    /// Merges another node's counters into this one.
    pub fn absorb(&mut self, other: RelStats) {
        self.retransmits += other.retransmits;
        self.dup_discards += other.dup_discards;
        self.corrupt_discards += other.corrupt_discards;
        self.gave_up += other.gave_up;
        self.crash_lost += other.crash_lost;
    }
}

/// Cycle accounting for the reliability layer: wire time consumed by
/// ack-timeout retransmissions (charged to
/// [`Component::Retransmit`] so the occupancy breakdown separates
/// recovery traffic from first-attempt serialization). Collected only
/// when the machine's metrics are enabled; mutation goes through the
/// typed [`charge_retransmit`](RelMetrics::charge_retransmit) handle.
#[derive(Clone, Debug, Default)]
pub struct RelMetrics {
    /// Retransmission wire cycles.
    pub cycles: ComponentCycles,
}

impl RelMetrics {
    /// Charges the serialization span of one retransmitted fragment.
    #[inline]
    pub fn charge_retransmit(&mut self, dur: Dur) {
        self.cycles.charge(Component::Retransmit, dur);
    }
}

impl fmt::Display for RelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retransmits {} dup-discards {} corrupt-discards {} gave-up {} crash-lost {}",
            self.retransmits,
            self.dup_discards,
            self.corrupt_discards,
            self.gave_up,
            self.crash_lost
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: NodeId = NodeId(0);
    const B: NodeId = NodeId(1);

    #[test]
    fn disabled_by_default() {
        assert!(!ReliabilityConfig::default().enabled);
        assert!(ReliabilityConfig::on().enabled);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = ReliabilityConfig {
            enabled: true,
            ack_timeout: Dur::ns(100),
            timeout_max: Dur::ns(750),
            max_retries: 10,
        };
        assert_eq!(cfg.timeout_for(0), Dur::ns(100));
        assert_eq!(cfg.timeout_for(1), Dur::ns(200));
        assert_eq!(cfg.timeout_for(2), Dur::ns(400));
        assert_eq!(cfg.timeout_for(3), Dur::ns(750));
        assert_eq!(cfg.timeout_for(40), Dur::ns(750));
        assert_eq!(cfg.timeout_for(200), Dur::ns(750)); // shift overflow
    }

    #[test]
    fn backoff_saturates_through_partial_shift_overflow() {
        // Shifts below 64 that still overflow drop high bits rather
        // than failing `checked_shl`; the schedule must saturate at the
        // ceiling instead of wrapping back toward zero (found by the
        // nisim-analysis backoff check).
        let cfg = ReliabilityConfig::on();
        for attempt in 0..80 {
            assert!(
                cfg.timeout_for(attempt) >= cfg.timeout_for(attempt.saturating_sub(1)),
                "attempt {attempt} shrank"
            );
        }
        assert_eq!(cfg.timeout_for(59), cfg.max_timeout());
        assert_eq!(cfg.timeout_for(63), cfg.max_timeout());
    }

    #[test]
    fn max_timeout_is_the_backoff_ceiling() {
        let cfg = ReliabilityConfig::on();
        assert_eq!(cfg.max_timeout(), cfg.timeout_max);
        // Every attempt's timeout stays at or below the ceiling.
        for attempt in 0..40 {
            assert!(cfg.timeout_for(attempt) <= cfg.max_timeout());
        }
        // A degenerate config whose base exceeds the cap still reports a
        // ceiling that covers what timeout_for can produce.
        let odd = ReliabilityConfig {
            ack_timeout: Dur::us(100),
            timeout_max: Dur::us(1),
            ..ReliabilityConfig::on()
        };
        assert_eq!(odd.max_timeout(), Dur::us(100));
    }

    #[test]
    fn sequences_are_per_destination() {
        let mut tx = SenderReliability::default();
        assert_eq!(tx.next_seq(B), SeqNo(0));
        assert_eq!(tx.next_seq(B), SeqNo(1));
        assert_eq!(tx.next_seq(A), SeqNo(0));
        assert_eq!(tx.issued(B), 2);
        assert_eq!(tx.issued(A), 1);
        assert_eq!(tx.issued(NodeId(9)), 0);
    }

    #[test]
    fn dedup_accepts_once() {
        let mut rx = ReceiverDedup::default();
        assert!(rx.accept(A, SeqNo(0)));
        assert!(!rx.accept(A, SeqNo(0)));
        assert!(rx.accept(A, SeqNo(1)));
        assert!(!rx.accept(A, SeqNo(1)));
        // Distinct senders have independent spaces.
        assert!(rx.accept(B, SeqNo(0)));
    }

    #[test]
    fn dedup_handles_out_of_order_and_compacts() {
        let mut rx = ReceiverDedup::default();
        assert!(rx.accept(A, SeqNo(2)));
        assert!(rx.accept(A, SeqNo(1)));
        assert_eq!(rx.pending_window(A), 2);
        assert!(rx.accept(A, SeqNo(0)));
        // Floor advanced past 2; the sparse set is empty again.
        assert_eq!(rx.pending_window(A), 0);
        assert!(!rx.accept(A, SeqNo(0)));
        assert!(!rx.accept(A, SeqNo(2)));
        assert!(rx.already_seen(A, SeqNo(1)));
        assert!(!rx.already_seen(A, SeqNo(3)));
    }

    #[test]
    fn dedup_is_exactly_once_under_random_replay() {
        use nisim_engine::SplitMix64;
        let mut rng = SplitMix64::new(0x5E9);
        let mut rx = ReceiverDedup::default();
        let total = 200u64;
        let mut delivered = vec![0u32; total as usize];
        // Replay every sequence 1-4 times in a shuffled order.
        let mut arrivals: Vec<u64> = Vec::new();
        for s in 0..total {
            for _ in 0..(1 + rng.gen_range(4)) {
                arrivals.push(s);
            }
        }
        for i in (1..arrivals.len()).rev() {
            arrivals.swap(i, rng.gen_range(i as u64 + 1) as usize);
        }
        for s in arrivals {
            if rx.accept(A, SeqNo(s)) {
                delivered[s as usize] += 1;
            }
        }
        assert!(delivered.iter().all(|&c| c == 1));
        assert_eq!(rx.pending_window(A), 0);
    }

    #[test]
    fn stats_absorb_sums() {
        let mut a = RelStats {
            retransmits: 1,
            dup_discards: 2,
            corrupt_discards: 3,
            gave_up: 4,
            crash_lost: 5,
        };
        a.absorb(RelStats {
            retransmits: 10,
            dup_discards: 20,
            corrupt_discards: 30,
            gave_up: 40,
            crash_lost: 50,
        });
        assert_eq!(a.retransmits, 11);
        assert_eq!(a.dup_discards, 22);
        assert_eq!(a.corrupt_discards, 33);
        assert_eq!(a.gave_up, 44);
        assert_eq!(a.crash_lost, 55);
    }

    #[test]
    fn dedup_snapshot_round_trips_mid_reorder() {
        let mut rx = ReceiverDedup::default();
        rx.accept(A, SeqNo(0));
        rx.accept(A, SeqNo(2));
        rx.accept(A, SeqNo(5)); // floor 1, seen {2, 5}
        rx.accept(B, SeqNo(0));
        let snap = rx.snapshot();

        let mut fresh = ReceiverDedup::default();
        assert!(fresh.restore(&snap));
        assert_eq!(fresh.pending_window(A), 2);
        assert!(fresh.already_seen(A, SeqNo(0)));
        assert!(fresh.already_seen(A, SeqNo(2)));
        assert!(!fresh.already_seen(A, SeqNo(1)));
        // The restored window keeps deduplicating exactly like the
        // original.
        assert!(!fresh.accept(A, SeqNo(2)));
        assert!(fresh.accept(A, SeqNo(1))); // floor compacts past 2
        assert_eq!(fresh.pending_window(A), 1);
        assert!(!fresh.restore(&Json::from(3u64)));
    }

    #[test]
    fn sender_snapshot_round_trips() {
        let mut tx = SenderReliability::default();
        tx.next_seq(A);
        tx.next_seq(B);
        tx.next_seq(B);
        let snap = tx.snapshot();
        let mut fresh = SenderReliability::default();
        assert!(fresh.restore(&snap));
        assert_eq!(fresh.issued(A), 1);
        assert_eq!(fresh.issued(B), 2);
        assert_eq!(fresh.next_seq(B), SeqNo(2));
    }
}
