//! Injection/ejection link ports.
//!
//! Each NI has one egress port into the network and one ingress port out of
//! it. A port serialises messages at the link rate; like the memory bus it
//! is modelled as a serially-reusable resource.

use nisim_engine::stats::Counter;
use nisim_engine::{Dur, Json, Time};

use crate::msg::NetConfig;

/// A serially-reusable link port.
///
/// # Example
///
/// ```
/// use nisim_engine::Time;
/// use nisim_net::{Link, NetConfig};
///
/// let cfg = NetConfig::default();
/// let mut port = Link::new();
/// let (s1, e1) = port.transmit(&cfg, Time::ZERO, 256);
/// let (s2, _) = port.transmit(&cfg, Time::ZERO, 256);
/// assert_eq!(s1, Time::ZERO);
/// assert_eq!(s2, e1); // the second message waits for the first
/// ```
#[derive(Clone, Debug, Default)]
pub struct Link {
    free_at: Time,
    messages: Counter,
    bytes: Counter,
    busy: Dur,
}

impl Link {
    /// Creates an idle port.
    pub fn new() -> Link {
        Link::default()
    }

    /// Serialises a message of `wire_bytes` through the port, starting no
    /// earlier than `now`. Returns `(start, end)` of the serialisation.
    pub fn transmit(&mut self, cfg: &NetConfig, now: Time, wire_bytes: u64) -> (Time, Time) {
        let start = now.max(self.free_at);
        let occupancy = cfg.serialisation(wire_bytes);
        let end = start + occupancy;
        self.free_at = end;
        self.messages.inc();
        self.bytes.add(wire_bytes);
        self.busy += occupancy;
        (start, end)
    }

    /// When the port next becomes free.
    pub fn free_at(&self) -> Time {
        self.free_at
    }

    /// Messages transmitted so far.
    pub fn messages(&self) -> u64 {
        self.messages.get()
    }

    /// Wire bytes transmitted so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.get()
    }

    /// Total busy time so far.
    pub fn busy(&self) -> Dur {
        self.busy
    }

    /// Fraction of `elapsed` the port spent serialising (0 when `elapsed`
    /// is zero). Useful for reporting link pressure in sweeps and
    /// benchmarks without re-deriving it from the raw counters.
    pub fn utilisation(&self, elapsed: Dur) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.busy.as_ns() as f64 / elapsed.as_ns() as f64
        }
    }

    /// Serialises the port state for checkpointing.
    pub fn snapshot(&self) -> Json {
        Json::obj()
            .set("free_at", self.free_at.as_ns())
            .set("messages", self.messages.get())
            .set("bytes", self.bytes.get())
            .set("busy", self.busy.as_ns())
    }

    /// Restores state captured by [`Link::snapshot`]. Returns `false` on
    /// shape mismatch.
    pub fn restore(&mut self, v: &Json) -> bool {
        let field = |key: &str| v.get(key).and_then(Json::as_u64);
        let (Some(free_at), Some(messages), Some(bytes), Some(busy)) = (
            field("free_at"),
            field("messages"),
            field("bytes"),
            field("busy"),
        ) else {
            return false;
        };
        self.free_at = Time::from_ns(free_at);
        self.messages = Counter::new();
        self.messages.add(messages);
        self.bytes = Counter::new();
        self.bytes.add(bytes);
        self.busy = Dur::ns(busy);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialises_back_to_back() {
        let cfg = NetConfig::default();
        let mut port = Link::new();
        let (s1, e1) = port.transmit(&cfg, Time::ZERO, 100);
        assert_eq!(s1, Time::ZERO);
        assert_eq!(e1, Time::from_ns(100));
        let (s2, e2) = port.transmit(&cfg, Time::from_ns(10), 50);
        assert_eq!(s2, e1);
        assert_eq!(e2, Time::from_ns(150));
    }

    #[test]
    fn idle_gap_resets_start() {
        let cfg = NetConfig::default();
        let mut port = Link::new();
        port.transmit(&cfg, Time::ZERO, 10);
        let (s, _) = port.transmit(&cfg, Time::from_ns(500), 10);
        assert_eq!(s, Time::from_ns(500));
    }

    #[test]
    fn utilisation_is_busy_over_elapsed() {
        let cfg = NetConfig::default();
        let mut port = Link::new();
        assert_eq!(port.utilisation(Dur::ZERO), 0.0);
        port.transmit(&cfg, Time::ZERO, 50);
        assert!((port.utilisation(Dur::ns(100)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_round_trips() {
        let cfg = NetConfig::default();
        let mut port = Link::new();
        port.transmit(&cfg, Time::ZERO, 100);
        port.transmit(&cfg, Time::ZERO, 28);
        let snap = port.snapshot();
        let mut fresh = Link::new();
        assert!(fresh.restore(&snap));
        assert_eq!(fresh.free_at(), port.free_at());
        assert_eq!(fresh.messages(), 2);
        assert_eq!(fresh.bytes(), 128);
        assert_eq!(fresh.busy(), port.busy());
        assert!(!fresh.restore(&Json::obj().set("free_at", 1u64)));
    }

    #[test]
    fn stats_accumulate() {
        let cfg = NetConfig::default();
        let mut port = Link::new();
        port.transmit(&cfg, Time::ZERO, 100);
        port.transmit(&cfg, Time::ZERO, 28);
        assert_eq!(port.messages(), 2);
        assert_eq!(port.bytes(), 128);
        assert_eq!(port.busy(), Dur::ns(128));
    }
}
