//! Return-to-sender flow control (paper §5.1.2).
//!
//! Each NI allocates **flow control buffers**: B outgoing buffers and B
//! incoming buffers. The protocol:
//!
//! 1. To inject a message, the sending NI must hold a free *outgoing*
//!    buffer; the buffer stays allocated until the receiver acknowledges.
//! 2. An arriving message needs a free *incoming* buffer. If one is free,
//!    the receiver occupies it and sends an **ack**, releasing the
//!    sender's outgoing buffer. The incoming buffer is freed when the
//!    message is drained out of the NI (consumed by the processor or
//!    deposited in memory, depending on the NI design).
//! 3. If no incoming buffer is free, the message is **returned to the
//!    sender** on a guaranteed channel; the sender absorbs it back into
//!    the (still-allocated) outgoing buffer and retries later.
//!
//! The scheme is scalable because buffer count is independent of machine
//! size; the cost is that small B turns bursty traffic into return/retry
//! storms — exactly the effect Figures 3a and 4 of the paper measure.
//!
//! [`FlowControlEndpoint`] does the buffer accounting for one NI and
//! enforces the conservation invariants; the NI models drive the protocol.

use std::fmt;

use nisim_engine::Json;

/// Number of flow-control buffers in each direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BufferCount {
    /// A finite buffer pool (must be ≥ 1).
    Finite(u32),
    /// Unlimited buffering — the "infinite flow control buffering" bars of
    /// Figure 3a.
    Infinite,
}

impl BufferCount {
    /// True if `in_use` buffers leave at least one free. Public so the
    /// `nisim-analysis` model checker drives the exact predicate the
    /// endpoints use.
    pub fn has_free(self, in_use: u32) -> bool {
        match self {
            BufferCount::Finite(cap) => in_use < cap,
            BufferCount::Infinite => true,
        }
    }
}

impl fmt::Display for BufferCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferCount::Finite(n) => write!(f, "{n}"),
            BufferCount::Infinite => write!(f, "inf"),
        }
    }
}

impl BufferCount {
    /// Parses the [`Display`](fmt::Display) form back (`"inf"` or a
    /// positive integer) — used by the CLI and by sweep records.
    pub fn from_key(key: &str) -> Option<BufferCount> {
        if key == "inf" {
            return Some(BufferCount::Infinite);
        }
        key.parse::<u32>()
            .ok()
            .filter(|&n| n > 0)
            .map(BufferCount::Finite)
    }
}

/// Flow-control statistics for one endpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Outgoing buffers successfully allocated.
    pub send_allocs: u64,
    /// Failed outgoing allocations (sender had to stall).
    pub send_alloc_failures: u64,
    /// Incoming buffers successfully allocated.
    pub recv_allocs: u64,
    /// Arrivals rejected for lack of an incoming buffer (messages
    /// returned to their senders).
    pub recv_rejects: u64,
    /// Acks processed (outgoing buffers released by the receiver).
    pub acks: u64,
    /// Returned-to-sender messages absorbed back at this endpoint.
    pub returns_absorbed: u64,
    /// Retries of previously returned messages.
    pub retries: u64,
}

/// Buffer accounting for one NI's return-to-sender endpoint.
///
/// # Example
///
/// ```
/// use nisim_net::{BufferCount, FlowControlEndpoint};
///
/// let mut fc = FlowControlEndpoint::new(BufferCount::Finite(1));
/// assert!(fc.try_alloc_send());
/// assert!(!fc.try_alloc_send()); // only one outgoing buffer
/// fc.ack_received();             // receiver acked; buffer released
/// assert!(fc.try_alloc_send());
/// ```
#[derive(Clone, Debug)]
pub struct FlowControlEndpoint {
    buffers: BufferCount,
    send_in_use: u32,
    recv_in_use: u32,
    stats: FlowStats,
}

impl FlowControlEndpoint {
    /// Creates an endpoint with `buffers` outgoing and `buffers` incoming
    /// buffers (the paper varies them together).
    ///
    /// # Panics
    ///
    /// Panics on `BufferCount::Finite(0)` — the protocol cannot make
    /// progress without at least one buffer per direction.
    pub fn new(buffers: BufferCount) -> FlowControlEndpoint {
        if let BufferCount::Finite(0) = buffers {
            panic!("flow control requires at least one buffer per direction");
        }
        FlowControlEndpoint {
            buffers,
            send_in_use: 0,
            recv_in_use: 0,
            stats: FlowStats::default(),
        }
    }

    /// The configured buffer count.
    pub fn buffers(&self) -> BufferCount {
        self.buffers
    }

    /// Statistics so far.
    pub fn stats(&self) -> FlowStats {
        self.stats
    }

    /// Outgoing buffers currently held.
    pub fn send_in_use(&self) -> u32 {
        self.send_in_use
    }

    /// Incoming buffers currently held.
    pub fn recv_in_use(&self) -> u32 {
        self.recv_in_use
    }

    /// True if an outgoing buffer is free right now.
    pub fn can_send(&self) -> bool {
        self.buffers.has_free(self.send_in_use)
    }

    /// Attempts to allocate an outgoing buffer for a new injection.
    pub fn try_alloc_send(&mut self) -> bool {
        if self.buffers.has_free(self.send_in_use) {
            self.send_in_use += 1;
            self.stats.send_allocs += 1;
            true
        } else {
            self.stats.send_alloc_failures += 1;
            false
        }
    }

    /// Attempts to allocate an incoming buffer for an arriving message.
    /// On failure the caller must return the message to its sender.
    pub fn try_alloc_recv(&mut self) -> bool {
        if self.buffers.has_free(self.recv_in_use) {
            self.recv_in_use += 1;
            self.stats.recv_allocs += 1;
            true
        } else {
            self.stats.recv_rejects += 1;
            false
        }
    }

    /// Releases an outgoing buffer because its message was acknowledged.
    ///
    /// # Panics
    ///
    /// Panics if no outgoing buffer is held (protocol violation).
    pub fn ack_received(&mut self) {
        assert!(self.send_in_use > 0, "ack without an outstanding send");
        self.send_in_use -= 1;
        self.stats.acks += 1;
    }

    /// Notes a returned message being absorbed back into its outgoing
    /// buffer (the buffer stays allocated for the retry).
    ///
    /// # Panics
    ///
    /// Panics if no outgoing buffer is held.
    pub fn return_absorbed(&mut self) {
        assert!(self.send_in_use > 0, "return without an outstanding send");
        self.stats.returns_absorbed += 1;
    }

    /// Notes a retry of a previously returned message.
    pub fn retried(&mut self) {
        self.stats.retries += 1;
    }

    /// Releases an incoming buffer because its message was drained.
    ///
    /// # Panics
    ///
    /// Panics if no incoming buffer is held (protocol violation).
    pub fn free_recv(&mut self) {
        assert!(
            self.recv_in_use > 0,
            "freeing an unallocated receive buffer"
        );
        self.recv_in_use -= 1;
    }

    /// Serialises the held-buffer counts and statistics for
    /// checkpointing. The capacity comes from the configuration and is
    /// not included.
    pub fn snapshot(&self) -> Json {
        Json::obj()
            .set("send_in_use", self.send_in_use as u64)
            .set("recv_in_use", self.recv_in_use as u64)
            .set("send_allocs", self.stats.send_allocs)
            .set("send_alloc_failures", self.stats.send_alloc_failures)
            .set("recv_allocs", self.stats.recv_allocs)
            .set("recv_rejects", self.stats.recv_rejects)
            .set("acks", self.stats.acks)
            .set("returns_absorbed", self.stats.returns_absorbed)
            .set("retries", self.stats.retries)
    }

    /// Restores state captured by [`FlowControlEndpoint::snapshot`] into
    /// an endpoint built with the same capacity. Returns `false` on
    /// shape mismatch or counts over capacity.
    pub fn restore(&mut self, v: &Json) -> bool {
        let field = |key: &str| v.get(key).and_then(Json::as_u64);
        let (Some(send_in_use), Some(recv_in_use)) = (field("send_in_use"), field("recv_in_use"))
        else {
            return false;
        };
        if send_in_use > u32::MAX as u64 || recv_in_use > u32::MAX as u64 {
            return false;
        }
        if let BufferCount::Finite(cap) = self.buffers {
            if send_in_use > cap as u64 || recv_in_use > cap as u64 {
                return false;
            }
        }
        let (Some(send_allocs), Some(send_alloc_failures), Some(recv_allocs)) = (
            field("send_allocs"),
            field("send_alloc_failures"),
            field("recv_allocs"),
        ) else {
            return false;
        };
        let (Some(recv_rejects), Some(acks), Some(returns_absorbed), Some(retries)) = (
            field("recv_rejects"),
            field("acks"),
            field("returns_absorbed"),
            field("retries"),
        ) else {
            return false;
        };
        self.send_in_use = send_in_use as u32;
        self.recv_in_use = recv_in_use as u32;
        self.stats = FlowStats {
            send_allocs,
            send_alloc_failures,
            recv_allocs,
            recv_rejects,
            acks,
            returns_absorbed,
            retries,
        };
        true
    }

    /// Checks the conservation invariant: every allocation is matched by
    /// at most one release, and holds never exceed capacity.
    pub fn check_invariants(&self) {
        if let BufferCount::Finite(cap) = self.buffers {
            assert!(self.send_in_use <= cap, "send buffers over capacity");
            assert!(self.recv_in_use <= cap, "recv buffers over capacity");
        }
        assert!(
            self.stats.acks <= self.stats.send_allocs,
            "more acks than sends"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_buffers_bound_injections() {
        let mut fc = FlowControlEndpoint::new(BufferCount::Finite(2));
        assert!(fc.try_alloc_send());
        assert!(fc.try_alloc_send());
        assert!(!fc.try_alloc_send());
        assert_eq!(fc.stats().send_alloc_failures, 1);
        fc.ack_received();
        assert!(fc.try_alloc_send());
        fc.check_invariants();
    }

    #[test]
    fn recv_rejects_count_returns() {
        let mut fc = FlowControlEndpoint::new(BufferCount::Finite(1));
        assert!(fc.try_alloc_recv());
        assert!(!fc.try_alloc_recv());
        assert_eq!(fc.stats().recv_rejects, 1);
        fc.free_recv();
        assert!(fc.try_alloc_recv());
        fc.check_invariants();
    }

    #[test]
    fn infinite_never_fails() {
        let mut fc = FlowControlEndpoint::new(BufferCount::Infinite);
        for _ in 0..10_000 {
            assert!(fc.try_alloc_send());
            assert!(fc.try_alloc_recv());
        }
        assert_eq!(fc.stats().send_alloc_failures, 0);
        assert_eq!(fc.stats().recv_rejects, 0);
    }

    #[test]
    fn return_keeps_buffer_allocated() {
        let mut fc = FlowControlEndpoint::new(BufferCount::Finite(1));
        assert!(fc.try_alloc_send());
        fc.return_absorbed();
        assert!(
            !fc.try_alloc_send(),
            "returned message still owns the buffer"
        );
        fc.retried();
        fc.ack_received();
        assert!(fc.try_alloc_send());
        assert_eq!(fc.stats().returns_absorbed, 1);
        assert_eq!(fc.stats().retries, 1);
    }

    #[test]
    #[should_panic(expected = "ack without an outstanding send")]
    fn spurious_ack_panics() {
        FlowControlEndpoint::new(BufferCount::Finite(1)).ack_received();
    }

    #[test]
    #[should_panic(expected = "unallocated receive buffer")]
    fn spurious_recv_free_panics() {
        FlowControlEndpoint::new(BufferCount::Finite(1)).free_recv();
    }

    #[test]
    #[should_panic(expected = "at least one buffer")]
    fn zero_buffers_panics() {
        FlowControlEndpoint::new(BufferCount::Finite(0));
    }

    #[test]
    fn snapshot_round_trips_and_rejects_over_capacity() {
        let mut fc = FlowControlEndpoint::new(BufferCount::Finite(2));
        fc.try_alloc_send();
        fc.try_alloc_send();
        fc.try_alloc_send(); // failure
        fc.try_alloc_recv();
        fc.ack_received();
        fc.return_absorbed();
        fc.retried();
        let snap = fc.snapshot();

        let mut fresh = FlowControlEndpoint::new(BufferCount::Finite(2));
        assert!(fresh.restore(&snap));
        assert_eq!(fresh.send_in_use(), fc.send_in_use());
        assert_eq!(fresh.recv_in_use(), fc.recv_in_use());
        assert_eq!(fresh.stats(), fc.stats());
        fresh.check_invariants();
        // Counts over the endpoint's capacity are rejected.
        let mut crowded = FlowControlEndpoint::new(BufferCount::Finite(4));
        for _ in 0..3 {
            crowded.try_alloc_send();
        }
        let over = crowded.snapshot();
        assert!(!FlowControlEndpoint::new(BufferCount::Finite(2)).restore(&over));
        assert!(FlowControlEndpoint::new(BufferCount::Finite(4)).restore(&over));
    }

    #[test]
    fn buffer_count_display() {
        assert_eq!(BufferCount::Finite(8).to_string(), "8");
        assert_eq!(BufferCount::Infinite.to_string(), "inf");
    }
}
