//! # nisim-net
//!
//! Network substrate for the `nisim` network-interface design study.
//!
//! The paper deliberately abstracts the network (§5.1.2): topology is
//! ignored, every message takes a constant 40 ns from injection of its last
//! byte at the source to arrival of its first byte at the destination, and
//! **return-to-sender** end-to-end flow control guarantees delivery with a
//! bounded number of *flow control buffers* per NI. Returned messages ride
//! a logically separate channel with a guaranteed path back.
//!
//! This crate provides exactly that abstraction:
//!
//! * [`NetConfig`] — wire latency, link rate, message/header geometry,
//! * [`fragment_payload`] — splitting payloads into ≤ 256-byte network
//!   messages,
//! * [`Link`] — serially-reusable injection/ejection ports,
//! * [`FlowControlEndpoint`] — per-NI send/receive buffer accounting for
//!   the return-to-sender protocol,
//! * [`switch_survey`] — the commercial-switch buffering data of Table 1.
//!
//! Two robustness modules extend the abstraction beyond the paper:
//!
//! * [`fault`] — a deterministic, seedable fault injector (drops,
//!   duplication, corruption, latency jitter, scheduled link outages),
//! * [`reliability`] — per-sender sequence numbers, ack-timeout
//!   retransmission with exponential backoff, and receiver-side
//!   duplicate suppression, composing with (not replacing) the
//!   return-to-sender flow control.

pub mod fault;
pub mod flow;
pub mod link;
pub mod msg;
pub mod reliability;
pub mod switch_survey;
pub mod topology;

pub use fault::{CrashWindow, Delivery, DownWindow, FaultConfig, FaultPlan, FaultStats};
pub use flow::{BufferCount, FlowControlEndpoint, FlowStats};
pub use link::Link;
pub use msg::{fragment_payload, Fragment, MsgId, NetConfig, NodeId};
pub use reliability::{
    ReceiverDedup, RelMetrics, RelStats, ReliabilityConfig, SenderReliability, SeqNo,
};
pub use topology::{Fabric, Topology};
