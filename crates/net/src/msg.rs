//! Network geometry, node/message identities, and fragmentation.

use std::fmt;

use nisim_engine::Dur;

/// Identity of one node of the parallel machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Unique identity of one network message (one fragment on the wire).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct MsgId(pub u64);

/// Network timing and message geometry (Table 3 of the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetConfig {
    /// Constant wire latency: injection of the last byte at the source to
    /// arrival of the first byte at the destination. 40 ns per Table 3.
    pub wire_latency: Dur,
    /// Maximum network message size including the header. 256 B per
    /// Table 3.
    pub max_message_bytes: u64,
    /// Per-message header size. 8 B per §6.1.1.
    pub header_bytes: u64,
    /// Link rate in bytes per nanosecond for injection/ejection
    /// serialisation. 1 B/ns (= 1 GB/s) by default — fast enough that the
    /// NI, not the wire, is always the bottleneck, matching the paper's
    /// focus.
    pub link_bytes_per_ns: f64,
    /// Network shape. [`Topology::Ideal`](crate::topology::Topology::Ideal)
    /// (the paper's abstraction) by
    /// default; ring and mesh fabrics add per-hop latency and link
    /// contention.
    pub topology: crate::topology::Topology,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            wire_latency: Dur::ns(40),
            max_message_bytes: 256,
            header_bytes: 8,
            link_bytes_per_ns: 1.0,
            topology: crate::topology::Topology::Ideal,
        }
    }
}

impl NetConfig {
    /// The largest payload one network message can carry.
    pub fn max_payload_bytes(&self) -> u64 {
        self.max_message_bytes - self.header_bytes
    }

    /// Time to serialise `bytes` onto (or off) a link.
    pub fn serialisation(&self, bytes: u64) -> Dur {
        Dur::ns((bytes as f64 / self.link_bytes_per_ns).ceil() as u64)
    }

    /// Total wire size of a message carrying `payload` bytes.
    pub fn wire_bytes(&self, payload: u64) -> u64 {
        payload + self.header_bytes
    }
}

/// One network message produced by fragmenting a payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Fragment {
    /// Index of this fragment within its transfer.
    pub index: u32,
    /// Total fragments in the transfer.
    pub of: u32,
    /// Payload bytes carried by this fragment (header excluded).
    pub payload_bytes: u64,
    /// Byte offset of this fragment's payload within the whole payload.
    pub offset: u64,
}

impl Fragment {
    /// True for the final fragment of its transfer.
    pub fn is_last(&self) -> bool {
        self.index + 1 == self.of
    }
}

/// Splits a payload of `payload_bytes` into network messages under `cfg`.
///
/// A zero-byte payload still produces one (header-only) message — sends
/// must reach the receiver to have any effect.
///
/// # Example
///
/// ```
/// use nisim_net::{fragment_payload, NetConfig};
/// let cfg = NetConfig::default(); // 256 B messages, 8 B headers
/// let frags = fragment_payload(&cfg, 500);
/// assert_eq!(frags.len(), 3); // 248 + 248 + 4
/// assert_eq!(frags[0].payload_bytes, 248);
/// assert_eq!(frags[2].payload_bytes, 4);
/// assert_eq!(frags[2].offset, 496);
/// assert!(frags[2].is_last());
/// ```
pub fn fragment_payload(cfg: &NetConfig, payload_bytes: u64) -> Vec<Fragment> {
    let max = cfg.max_payload_bytes();
    assert!(max > 0, "header leaves no payload room");
    let count = payload_bytes.div_ceil(max).max(1);
    (0..count)
        .map(|i| {
            let offset = i * max;
            let payload = (payload_bytes - offset).min(max);
            Fragment {
                index: i as u32,
                of: count as u32,
                payload_bytes: payload,
                offset,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table3() {
        let cfg = NetConfig::default();
        assert_eq!(cfg.wire_latency, Dur::ns(40));
        assert_eq!(cfg.max_message_bytes, 256);
        assert_eq!(cfg.header_bytes, 8);
        assert_eq!(cfg.max_payload_bytes(), 248);
    }

    #[test]
    fn small_payload_single_fragment() {
        let cfg = NetConfig::default();
        let frags = fragment_payload(&cfg, 100);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].payload_bytes, 100);
        assert_eq!(frags[0].offset, 0);
        assert!(frags[0].is_last());
    }

    #[test]
    fn zero_payload_still_sends_header() {
        let frags = fragment_payload(&NetConfig::default(), 0);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].payload_bytes, 0);
    }

    #[test]
    fn exact_multiple_fragments_cleanly() {
        let cfg = NetConfig::default();
        let frags = fragment_payload(&cfg, 496); // 2 x 248
        assert_eq!(frags.len(), 2);
        assert!(frags.iter().all(|f| f.payload_bytes == 248));
    }

    #[test]
    fn fragments_cover_payload_exactly() {
        let cfg = NetConfig::default();
        for size in [1u64, 247, 248, 249, 4096, 10_000] {
            let frags = fragment_payload(&cfg, size);
            let total: u64 = frags.iter().map(|f| f.payload_bytes).sum();
            assert_eq!(total, size, "size {size}");
            let mut expect_offset = 0;
            for f in &frags {
                assert_eq!(f.offset, expect_offset);
                assert!(f.payload_bytes <= cfg.max_payload_bytes());
                expect_offset += f.payload_bytes;
            }
            assert_eq!(frags.last().unwrap().of as usize, frags.len());
        }
    }

    #[test]
    fn serialisation_rounds_up() {
        let cfg = NetConfig::default();
        assert_eq!(cfg.serialisation(256), Dur::ns(256));
        assert_eq!(cfg.serialisation(0), Dur::ZERO);
        let fast = NetConfig {
            link_bytes_per_ns: 2.0,
            ..cfg
        };
        assert_eq!(fast.serialisation(15), Dur::ns(8));
    }

    #[test]
    fn wire_bytes_include_header() {
        assert_eq!(NetConfig::default().wire_bytes(100), 108);
    }

    #[test]
    fn node_id_formats() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
        assert_eq!(NodeId(7).index(), 7);
    }
}
