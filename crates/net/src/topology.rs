//! Optional network topologies (extension).
//!
//! The paper deliberately ignores topology (§5.1.2) and argues its
//! *relative* results extrapolate to real networks; it cites Dai & Panda
//! that network contention can matter. This module provides that
//! extrapolation path: a store-and-forward fabric with per-hop switch
//! latency and *contended links*, in ring and 2-D mesh shapes, behind
//! the same delivery interface as the ideal constant-latency network.
//!
//! Links are serially-reusable [`Link`] resources shared machine-wide,
//! so many-to-one traffic exhibits real link contention.

use std::collections::BTreeMap;

use nisim_engine::{Dur, Json, Time};

use crate::link::Link;
use crate::msg::{NetConfig, NodeId};

/// The network shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Topology {
    /// The paper's abstraction: constant latency, no contention.
    #[default]
    Ideal,
    /// A bidirectional ring; minimal-direction routing.
    Ring,
    /// A 2-D mesh (as square as the node count allows); XY routing.
    Mesh2D,
}

impl Topology {
    /// The mesh dimensions used for `nodes` (columns, rows).
    pub fn mesh_dims(nodes: u32) -> (u32, u32) {
        let mut cols = (nodes as f64).sqrt().floor() as u32;
        while cols > 1 && !nodes.is_multiple_of(cols) {
            cols -= 1;
        }
        (cols.max(1), nodes / cols.max(1))
    }

    /// The sequence of directed links `(from, to)` a message traverses.
    /// Empty for [`Topology::Ideal`].
    pub fn route(&self, src: NodeId, dst: NodeId, nodes: u32) -> Vec<(u32, u32)> {
        assert!(src.0 < nodes && dst.0 < nodes, "route endpoints in range");
        let mut path = Vec::new();
        if src == dst {
            return path;
        }
        match self {
            Topology::Ideal => path,
            Topology::Ring => {
                let fwd = (dst.0 + nodes - src.0) % nodes;
                let bwd = nodes - fwd;
                let mut at = src.0;
                if fwd <= bwd {
                    for _ in 0..fwd {
                        let next = (at + 1) % nodes;
                        path.push((at, next));
                        at = next;
                    }
                } else {
                    for _ in 0..bwd {
                        let next = (at + nodes - 1) % nodes;
                        path.push((at, next));
                        at = next;
                    }
                }
                path
            }
            Topology::Mesh2D => {
                let (cols, _rows) = Self::mesh_dims(nodes);
                let (mut x, mut y) = (src.0 % cols, src.0 / cols);
                let (dx, dy) = (dst.0 % cols, dst.0 / cols);
                // XY (dimension-ordered) routing: fix the column first.
                while x != dx {
                    let nx = if dx > x { x + 1 } else { x - 1 };
                    path.push((x + y * cols, nx + y * cols));
                    x = nx;
                }
                while y != dy {
                    let ny = if dy > y { y + 1 } else { y - 1 };
                    path.push((x + y * cols, x + ny * cols));
                    y = ny;
                }
                path
            }
        }
    }

    /// The hop count between two nodes.
    pub fn hops(&self, src: NodeId, dst: NodeId, nodes: u32) -> u32 {
        self.route(src, dst, nodes).len() as u32
    }
}

/// A store-and-forward fabric: per-hop serialisation on contended links
/// plus a per-hop switch latency.
///
/// # Example
///
/// ```
/// use nisim_engine::Time;
/// use nisim_net::{NetConfig, NodeId};
/// use nisim_net::topology::{Fabric, Topology};
///
/// let cfg = NetConfig::default();
/// let mut fabric = Fabric::new(Topology::Ring, 8, cfg.wire_latency);
/// let t = fabric.transit(&cfg, Time::ZERO, NodeId(0), NodeId(2), 64);
/// // Two hops: 2 x (64 B serialisation + 40 ns switch latency).
/// assert_eq!(t.as_ns(), 2 * (64 + 40));
/// ```
#[derive(Clone, Debug)]
pub struct Fabric {
    topology: Topology,
    nodes: u32,
    hop_latency: Dur,
    /// Per-hop links, keyed `(from, to)`. A `BTreeMap` so iteration
    /// (e.g. [`Fabric::link_loads`]) is deterministic without sorting.
    links: BTreeMap<(u32, u32), Link>,
}

impl Fabric {
    /// Creates a fabric over `nodes` nodes with the given per-hop switch
    /// latency (the ideal topology uses it as the end-to-end latency).
    pub fn new(topology: Topology, nodes: u32, hop_latency: Dur) -> Fabric {
        Fabric {
            topology,
            nodes,
            hop_latency,
            links: BTreeMap::new(),
        }
    }

    /// The fabric's topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Carries `wire_bytes` from `src` to `dst` starting at `now`;
    /// returns the arrival time. Links are reserved hop by hop
    /// (store-and-forward), so shared links contend.
    pub fn transit(
        &mut self,
        cfg: &NetConfig,
        now: Time,
        src: NodeId,
        dst: NodeId,
        wire_bytes: u64,
    ) -> Time {
        match self.topology {
            Topology::Ideal => now + cfg.wire_latency,
            _ => {
                let route = self.topology.route(src, dst, self.nodes);
                let mut t = now;
                for hop in route {
                    let link = self.links.entry(hop).or_default();
                    let (_, end) = link.transmit(cfg, t, wire_bytes);
                    t = end + self.hop_latency;
                }
                t
            }
        }
    }

    /// Total bytes carried per link, for hot-link analysis.
    pub fn link_loads(&self) -> Vec<((u32, u32), u64)> {
        let mut v: Vec<((u32, u32), u64)> =
            self.links.iter().map(|(&k, l)| (k, l.bytes())).collect();
        v.sort_unstable();
        v
    }

    /// Serialises every materialised link for checkpointing. Empty for
    /// the ideal topology, which holds no link state.
    pub fn snapshot(&self) -> Json {
        Json::Arr(
            self.links
                .iter()
                .map(|(&(from, to), link)| {
                    Json::Arr(vec![
                        Json::from(from as u64),
                        Json::from(to as u64),
                        link.snapshot(),
                    ])
                })
                .collect(),
        )
    }

    /// Restores links captured by [`Fabric::snapshot`]. Returns `false`
    /// on shape mismatch.
    pub fn restore(&mut self, v: &Json) -> bool {
        let Some(entries) = v.as_arr() else {
            return false;
        };
        let mut links = BTreeMap::new();
        for entry in entries {
            let Some([from, to, state]) =
                entry.as_arr().and_then(|p| <&[Json; 3]>::try_from(p).ok())
            else {
                return false;
            };
            let (Some(from), Some(to)) = (from.as_u64(), to.as_u64()) else {
                return false;
            };
            if from > u32::MAX as u64 || to > u32::MAX as u64 {
                return false;
            }
            let mut link = Link::new();
            if !link.restore(state) {
                return false;
            }
            links.insert((from as u32, to as u32), link);
        }
        self.links = links;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_routes_take_the_short_way() {
        let t = Topology::Ring;
        assert_eq!(t.hops(NodeId(0), NodeId(1), 8), 1);
        assert_eq!(t.hops(NodeId(0), NodeId(7), 8), 1); // backwards
        assert_eq!(t.hops(NodeId(0), NodeId(4), 8), 4);
        assert_eq!(t.hops(NodeId(2), NodeId(2), 8), 0);
    }

    #[test]
    fn mesh_uses_xy_routing() {
        // 16 nodes -> 4x4 mesh. Node 0 = (0,0), node 15 = (3,3).
        assert_eq!(Topology::mesh_dims(16), (4, 4));
        let t = Topology::Mesh2D;
        assert_eq!(t.hops(NodeId(0), NodeId(15), 16), 6);
        let route = t.route(NodeId(0), NodeId(5), 16); // (0,0)->(1,1)
        assert_eq!(route, vec![(0, 1), (1, 5)]); // X first, then Y
    }

    #[test]
    fn mesh_dims_handle_non_squares() {
        assert_eq!(Topology::mesh_dims(12), (3, 4));
        assert_eq!(Topology::mesh_dims(8), (2, 4));
        assert_eq!(Topology::mesh_dims(7), (1, 7));
    }

    #[test]
    fn ideal_is_constant_latency() {
        let cfg = NetConfig::default();
        let mut f = Fabric::new(Topology::Ideal, 16, cfg.wire_latency);
        let t = f.transit(&cfg, Time::from_ns(100), NodeId(0), NodeId(9), 4096);
        assert_eq!(t, Time::from_ns(140));
    }

    #[test]
    fn hops_add_latency_and_serialisation() {
        let cfg = NetConfig::default();
        let mut f = Fabric::new(Topology::Ring, 8, Dur::ns(40));
        let near = f.transit(&cfg, Time::ZERO, NodeId(0), NodeId(1), 100);
        let mut f2 = Fabric::new(Topology::Ring, 8, Dur::ns(40));
        let far = f2.transit(&cfg, Time::ZERO, NodeId(0), NodeId(4), 100);
        assert_eq!(near.as_ns(), 140);
        assert_eq!(far.as_ns(), 4 * 140);
    }

    #[test]
    fn shared_links_contend() {
        let cfg = NetConfig::default();
        let mut f = Fabric::new(Topology::Ring, 8, Dur::ns(40));
        // Two messages over the same first link at the same time: the
        // second serialises behind the first.
        let a = f.transit(&cfg, Time::ZERO, NodeId(0), NodeId(1), 100);
        let b = f.transit(&cfg, Time::ZERO, NodeId(0), NodeId(1), 100);
        assert_eq!(a.as_ns(), 140);
        assert_eq!(b.as_ns(), 240);
        // A disjoint link is unaffected.
        let c = f.transit(&cfg, Time::ZERO, NodeId(3), NodeId(4), 100);
        assert_eq!(c.as_ns(), 140);
    }

    #[test]
    fn fabric_snapshot_round_trips_contention_state() {
        let cfg = NetConfig::default();
        let mut f = Fabric::new(Topology::Ring, 8, Dur::ns(40));
        f.transit(&cfg, Time::ZERO, NodeId(0), NodeId(2), 100);
        let snap = f.snapshot();

        let mut fresh = Fabric::new(Topology::Ring, 8, Dur::ns(40));
        assert!(fresh.restore(&snap));
        assert_eq!(fresh.link_loads(), f.link_loads());
        // The restored links carry their reservation horizon: a message
        // over the same first hop queues exactly as it would have.
        let a = f.transit(&cfg, Time::ZERO, NodeId(0), NodeId(1), 100);
        let b = fresh.transit(&cfg, Time::ZERO, NodeId(0), NodeId(1), 100);
        assert_eq!(a, b);
        // Ideal fabrics snapshot to an empty list.
        let ideal = Fabric::new(Topology::Ideal, 8, Dur::ns(40));
        assert_eq!(ideal.snapshot(), Json::Arr(Vec::new()));
        assert!(!fresh.restore(&Json::from(1u64)));
    }

    #[test]
    fn link_loads_accumulate() {
        let cfg = NetConfig::default();
        let mut f = Fabric::new(Topology::Ring, 4, Dur::ns(40));
        f.transit(&cfg, Time::ZERO, NodeId(0), NodeId(2), 50);
        let loads = f.link_loads();
        assert_eq!(loads.len(), 2);
        assert!(loads.iter().all(|&(_, b)| b == 50));
    }
}
