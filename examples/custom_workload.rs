//! Writing a custom workload against the public API: a work-stealing-like
//! task diffusion pattern that is not one of the paper's seven apps.
//!
//! Each node starts with a pile of tasks; finishing a task occasionally
//! spawns one on a random peer. The example shows the `Skeleton` trait,
//! handler replies, and report inspection.
//!
//! Run with:
//! ```text
//! cargo run --release -p nisim-examples --bin custom_workload
//! ```

use nisim_core::process::{AppMessage, HandlerSpec, SendSpec};
use nisim_core::{Machine, MachineConfig, NiKind, TimeCategory};
use nisim_engine::{Dur, SplitMix64, Time};
use nisim_net::NodeId;
use nisim_workloads::skeleton::{skeleton_factory, Skeleton, Step};

const TAG_TASK: u32 = 77;

struct Diffusion {
    me: NodeId,
    nodes: u32,
    tasks_left: u32,
    rng: SplitMix64,
}

impl Skeleton for Diffusion {
    fn next_step(&mut self, _now: Time) -> Step {
        if self.tasks_left == 0 {
            return Step::Done;
        }
        self.tasks_left -= 1;
        // Work on a task, then sometimes push a spawned task to a peer.
        if self.rng.gen_bool(0.3) {
            let mut dst = self.me;
            while dst == self.me {
                dst = NodeId(self.rng.gen_range(self.nodes as u64) as u32);
            }
            Step::Send(SendSpec::new(dst, 32, TAG_TASK))
        } else {
            Step::Compute(Dur::us(2))
        }
    }

    fn on_app_message(&mut self, msg: &AppMessage, _now: Time) -> HandlerSpec {
        debug_assert_eq!(msg.tag, TAG_TASK);
        // Execute the spawned task inside the handler.
        HandlerSpec::compute(Dur::us(1))
    }
}

fn main() {
    println!("Custom workload: task diffusion on two NI designs\n");
    for kind in [NiKind::Ap3000, NiKind::Cni32Qm] {
        let cfg = MachineConfig::with_ni(kind).nodes(8);
        let nodes = cfg.nodes;
        let seed = cfg.seed;
        let report = Machine::run(
            cfg,
            skeleton_factory(nodes, move |id| Diffusion {
                me: id,
                nodes,
                tasks_left: 200,
                rng: SplitMix64::new(seed ^ id.0 as u64),
            }),
        );
        assert!(report.all_quiescent, "diffusion must finish");
        println!(
            "{:<22} elapsed {:>6} us, {} messages, idle {:.1}%",
            kind.name(),
            report.elapsed.as_ns() / 1_000,
            report.app_messages,
            100.0 * report.fraction(TimeCategory::Idle),
        );
    }
}
