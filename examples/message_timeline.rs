//! Message-lifecycle tracing: follow individual network fragments through
//! send → inject → accept/reject → drain → handler, on two contrasting
//! NI designs, using the machine's built-in trace recorder.
//!
//! Run with:
//! ```text
//! cargo run --release -p nisim-examples --bin message_timeline
//! ```

use nisim_core::process::{Action, AppMessage, HandlerSpec, Process, SendSpec};
use nisim_core::{Machine, MachineConfig, NiKind, TraceKind};
use nisim_engine::Time;
use nisim_net::{BufferCount, NodeId};

/// Node 0 fires a burst of eight messages; node 1 consumes them.
struct Burst(u32);
impl Process for Burst {
    fn next_action(&mut self, _now: Time) -> Action {
        if self.0 == 0 {
            return Action::Done;
        }
        self.0 -= 1;
        Action::Send(SendSpec::new(NodeId(1), 64, 0))
    }
    fn on_message(&mut self, _m: &AppMessage, _now: Time) -> HandlerSpec {
        HandlerSpec::empty()
    }
    fn is_done(&self) -> bool {
        self.0 == 0
    }
}
struct Quiet;
impl Process for Quiet {
    fn next_action(&mut self, _now: Time) -> Action {
        Action::Done
    }
    fn on_message(&mut self, _m: &AppMessage, _now: Time) -> HandlerSpec {
        HandlerSpec::empty()
    }
    fn is_done(&self) -> bool {
        true
    }
}

fn show(kind: NiKind, buffers: BufferCount) {
    println!("--- {} (flow-control buffers = {buffers}) ---", kind.name());
    let cfg = MachineConfig::with_ni(kind).nodes(2).flow_buffers(buffers);
    let (report, trace) = Machine::run_traced(cfg, |id| -> Box<dyn Process> {
        if id.0 == 0 {
            Box::new(Burst(8))
        } else {
            Box::new(Quiet)
        }
    });
    for e in trace.iter().filter(|e| e.msg.0 < 2) {
        let what = match e.kind {
            TraceKind::SendStart => "send start",
            TraceKind::Inject => "inject",
            TraceKind::Accept => "accept",
            TraceKind::Reject => "REJECT",
            TraceKind::Drain => "drain",
            TraceKind::Handler => "handler",
            TraceKind::Ack => "ack at sender",
            TraceKind::Return => "RETURN at sender",
            TraceKind::Retry => "retry",
            TraceKind::Retransmit => "RETRANSMIT",
            TraceKind::WireDrop => "DROPPED on wire",
            TraceKind::DupDiscard => "duplicate discarded",
            TraceKind::CorruptDiscard => "corrupt discarded",
        };
        println!(
            "  t={:>6} ns  msg {}  {:<16} @ {}",
            e.at.as_ns(),
            e.msg.0,
            what,
            e.node
        );
    }
    println!(
        "  ({} fragments, {} rejects, elapsed {} ns)\n",
        report.fragments_sent,
        report.recv_rejects,
        report.elapsed.as_ns()
    );
}

fn main() {
    println!("Lifecycle of the first two fragments of an 8-message burst:\n");
    show(NiKind::Cm5, BufferCount::Finite(1));
    show(NiKind::Cni32Qm, BufferCount::Finite(1));
    println!(
        "With one buffer the CM-5-like NI is ack-gated: each send start waits\n\
         for the previous message's ack, and its uncached word loops make every\n\
         stage slow. The coherent NI's stages are several times quicker and its\n\
         acks arrive at deposit time, so the burst pipelines."
    );
}
