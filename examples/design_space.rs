//! Design-space exploration: sweep every NI design over one
//! macrobenchmark and report execution time, bus traffic and the
//! time decomposition — the library's core use case.
//!
//! Run with:
//! ```text
//! cargo run --release -p nisim-examples --bin design_space [app]
//! ```
//! where `app` is one of appbt, barnes, dsmc, em3d, moldyn, spsolve,
//! unstructured (default em3d).

use nisim_core::{MachineConfig, NiKind, TimeCategory};
use nisim_workloads::apps::{run_app, MacroApp};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "em3d".into());
    let app = MacroApp::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown app {name:?}; using em3d");
            MacroApp::Em3d
        });
    println!("Design-space sweep on {app} (16 nodes, 8 flow-control buffers)\n");
    println!(
        "{:<24} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "NI", "elapsed", "compute", "transfer", "buffering", "bus txns"
    );
    let kinds = [
        NiKind::Cm5,
        NiKind::Udma,
        NiKind::Ap3000,
        NiKind::StartJr,
        NiKind::MemoryChannel,
        NiKind::Cni512Q,
        NiKind::Cni32Qm,
    ];
    for kind in kinds {
        let cfg = MachineConfig::with_ni(kind);
        let r = run_app(app, &cfg, &app.default_params());
        println!(
            "{:<24} {:>8} us {:>8.1}% {:>8.1}% {:>8.1}% {:>9}",
            kind.name(),
            r.elapsed.as_ns() / 1_000,
            100.0 * r.fraction(TimeCategory::Compute),
            100.0 * r.fraction(TimeCategory::DataTransfer),
            100.0 * r.fraction(TimeCategory::Buffering),
            r.bus_transactions,
        );
    }
}
