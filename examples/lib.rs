//! Shared helpers for the nisim examples.
