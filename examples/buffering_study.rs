//! Reproducing the paper's buffering insight interactively: sweep the
//! flow-control buffer count for one NI on the bursty em3d workload and
//! watch returns, stalls and execution time react.
//!
//! Run with:
//! ```text
//! cargo run --release -p nisim-examples --bin buffering_study [ni]
//! ```
//! where `ni` is `cm5` (default), `ap3000`, or `cni32qm`.

use nisim_core::{MachineConfig, NiKind, TimeCategory};
use nisim_net::BufferCount;
use nisim_workloads::apps::{run_app, MacroApp};

fn main() {
    let ni = match std::env::args().nth(1).as_deref() {
        Some("ap3000") => NiKind::Ap3000,
        Some("cni32qm") => NiKind::Cni32Qm,
        _ => NiKind::Cm5,
    };
    let app = MacroApp::Em3d;
    println!("Buffering study: {app} on the {}\n", ni.name());
    println!(
        "{:>8} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "buffers", "elapsed", "buffering", "returns", "stalls", "retries"
    );
    let levels = [
        BufferCount::Finite(1),
        BufferCount::Finite(2),
        BufferCount::Finite(4),
        BufferCount::Finite(8),
        BufferCount::Finite(32),
        BufferCount::Infinite,
    ];
    for b in levels {
        let cfg = MachineConfig::with_ni(ni).flow_buffers(b);
        let r = run_app(app, &cfg, &app.default_params());
        println!(
            "{:>8} {:>8} us {:>8.1}% {:>9} {:>9} {:>9}",
            b.to_string(),
            r.elapsed.as_ns() / 1_000,
            100.0 * r.fraction(TimeCategory::Buffering),
            r.recv_rejects,
            r.send_stalls,
            r.retries,
        );
    }
    println!(
        "\nThe coherent NIs free their flow-control buffers at deposit time\n\
         (NI-managed buffering in plentiful memory), so try `cni32qm` to see\n\
         the sweep go flat — the paper's Figure 3b."
    );
}
