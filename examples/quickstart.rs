//! Quickstart: simulate a two-node ping-pong on two NI designs and print
//! the round-trip latencies — the `nisim` equivalent of "hello, world".
//!
//! Run with:
//! ```text
//! cargo run --release -p nisim-examples --bin quickstart
//! ```

use nisim_core::{MachineConfig, NiKind};
use nisim_workloads::micro::pingpong::measure_round_trip;

fn main() {
    println!("nisim quickstart: 64-byte round trips on two NI designs\n");
    for kind in [NiKind::Cm5, NiKind::Cni32Qm] {
        let cfg = MachineConfig::with_ni(kind);
        let r = measure_round_trip(&cfg, 64);
        println!(
            "{:<22} mean {:.2} us   (min {:.2}, max {:.2}, {} samples)",
            kind.name(),
            r.mean_us,
            r.min_us,
            r.max_us,
            r.samples
        );
    }
    println!(
        "\nThe coherent NI wins by moving whole cache blocks, avoiding\n\
         uncached word accesses, and letting the NI manage the transfer —\n\
         the paper's three data-transfer parameters in action."
    );
}
