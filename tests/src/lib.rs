//! Integration test support crate for nisim (tests live in `tests/tests`).
