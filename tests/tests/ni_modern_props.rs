//! Property tests for the three modern NI models (RDMA queue pairs,
//! connectionless URMA, scatter-gather DMA).
//!
//! The container is offline (no proptest), so the generator is the same
//! hand-rolled LCG the snapshot property suite uses — deterministic, so
//! failures reproduce exactly.

use nisim_core::ni::rdma_qp::RdmaQpNi;
use nisim_core::ni::sgdma::{decode_gather_tag, encode_gather_tag, Descriptor};
use nisim_core::{MachineConfig, NiKind};
use nisim_workloads::micro::pingpong::measure_round_trip;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Round-trip latency on the RDMA queue-pair NI is monotone in the
/// payload: more blocks cost more inside either protocol, and crossing
/// the eager/rendezvous boundary only ever *adds* the handshake. A
/// non-monotonic pair would mean the crossover is set where rendezvous
/// undercuts eager — the kink the goldens assert would be an artefact.
#[test]
fn rdma_round_trip_is_monotone_across_the_crossover() {
    let cfg = MachineConfig::with_ni(NiKind::RdmaQp);
    let mut rng = Lcg(0x5eed_4001);
    let mut payloads: Vec<u64> = (0..12).map(|_| 1 + rng.below(248)).collect();
    // Always include the boundary itself and its far sides.
    payloads.extend([8, cfg.costs.rdma_eager_max_payload, 248]);
    payloads.sort_unstable();
    payloads.dedup();
    let rtts: Vec<(u64, f64)> = payloads
        .iter()
        .map(|&p| (p, measure_round_trip(&cfg, p).mean_us))
        .collect();
    for pair in rtts.windows(2) {
        assert!(
            pair[1].1 >= pair[0].1,
            "rtt must not shrink with payload: {:?} then {:?}",
            pair[0],
            pair[1]
        );
    }
}

/// The QP-state cache conserves its accounting under any lookup stream:
/// hits + misses == lookups, the resident set never exceeds capacity,
/// and a connection is only ever a hit if *that* connection (not a
/// neighbour) was touched within the last `capacity` distinct lookups.
#[test]
fn qp_cache_conserves_lookups_and_never_leaks_across_connections() {
    let mut rng = Lcg(0x5eed_4002);
    for case in 0..40 {
        let capacity = 1 + rng.below(32) as u32;
        let cfg = MachineConfig::with_ni(NiKind::RdmaQp).qp_cache_entries(capacity);
        let mut ni = RdmaQpNi::new(&cfg);
        // A reference LRU the model must agree with.
        let mut reference: Vec<u32> = Vec::new();
        for step in 0..400 {
            let conn = 1 + rng.below(48) as u32;
            let hit = ni.lookup(conn);
            let expect = reference.contains(&conn);
            assert_eq!(
                hit, expect,
                "case {case}@{step}: conn {conn} hit={hit} but reference says {expect}"
            );
            reference.retain(|&c| c != conn);
            reference.push(conn);
            if reference.len() as u64 > ni.capacity() {
                reference.remove(0);
            }

            let (lookups, hits, misses) = ni.counters();
            assert_eq!(
                hits + misses,
                lookups,
                "case {case}@{step}: accounting must conserve lookups"
            );
            assert!(
                ni.cached().len() as u64 <= ni.capacity(),
                "case {case}@{step}: resident set exceeds capacity"
            );
            assert_eq!(
                ni.cached(),
                &reference[..],
                "case {case}@{step}: LRU order diverged"
            );
        }
    }
}

/// Gather followed by scatter is the identity on the described elements:
/// for random base/stride/count/width, gathering from a pattern-filled
/// source and scattering into a zeroed destination reproduces exactly
/// the strided bytes and touches nothing else.
#[test]
fn descriptor_gather_scatter_round_trips_random_geometries() {
    let mut rng = Lcg(0x5eed_4003);
    for case in 0..200 {
        let count = 1 + rng.below(24);
        let elem_bytes = 1 + rng.below(32);
        let stride = elem_bytes + rng.below(48);
        let base = rng.below(64);
        let span = base + stride * (count - 1) + elem_bytes;
        let src: Vec<u8> = (0..span).map(|i| (i * 31 + case) as u8).collect();
        let desc = Descriptor {
            base,
            stride,
            elem_bytes,
            count,
        };
        let packed = desc
            .gather(&src)
            .unwrap_or_else(|| panic!("case {case}: in-range gather refused: {desc:?}"));
        assert_eq!(packed.len() as u64, desc.total_bytes());

        let mut dst = vec![0u8; span as usize];
        assert!(desc.scatter(&packed, &mut dst), "case {case}: {desc:?}");
        for e in 0..count {
            let at = (base + e * stride) as usize;
            let w = elem_bytes as usize;
            assert_eq!(
                &dst[at..at + w],
                &src[at..at + w],
                "case {case}: element {e} corrupted"
            );
        }
        // Bytes outside the described elements stay untouched (zero).
        let mut described = vec![false; span as usize];
        for e in 0..count {
            let at = (base + e * stride) as usize;
            described[at..at + elem_bytes as usize].fill(true);
        }
        for (i, hit) in described.iter().enumerate() {
            if !hit {
                assert_eq!(dst[i], 0, "case {case}: stray write at {i}");
            }
        }

        // The wire tag round-trips the same geometry when it fits.
        if count <= 0x3FFF && elem_bytes <= 0xFFFF {
            let tag = encode_gather_tag(count as u32, elem_bytes as u32);
            assert_eq!(decode_gather_tag(tag), Some((count, elem_bytes)));
        }
    }
}
