//! Kill-and-resume chaos coverage for the open-loop traffic engine.
//!
//! The traffic injectors carry state no macrobenchmark has: a live
//! arrival RNG mid-stream, a scheduled next-arrival instant, the MMPP
//! modulating state and its dwell deadline, and per-tenant latency
//! histograms accumulated in a sink shared across every node. A
//! checkpoint taken mid-run must capture all of it, and a restore into a
//! freshly built machine must resume to a [`RunRecord`] byte-identical
//! to the uninterrupted run — per-tenant percentile blocks included.
//!
//! Mirrors the kill-and-resume loop of `nisim_bench::chaos`, pointed at
//! traffic workloads instead of app skeletons.

use nisim_bench::record::{fingerprint, RunRecord};
use nisim_core::snapshot::{restore, save};
use nisim_core::{Machine, MachineConfig, MachineSim, NiKind};
use nisim_engine::{SplitMix64, Time};
use nisim_net::BufferCount;
use nisim_workloads::traffic::{TrafficDriver, TrafficKind, TrafficSpec};

const CHAOS_SEED: u64 = 0x7AFF_1C05;
const CUTS_PER_POINT: usize = 3;
const MAX_EVENTS: u64 = 500_000_000;

fn horizon() -> Time {
    Time::from_ns(60_000_000_000)
}

fn config(ni: NiKind) -> MachineConfig {
    MachineConfig::with_ni(ni)
        .nodes(4)
        .flow_buffers(BufferCount::Finite(4))
}

fn record_of(
    spec: TrafficSpec,
    cfg: &MachineConfig,
    m: &Machine,
    sim: &MachineSim,
    status: nisim_engine::SimStatus,
    driver: &TrafficDriver,
) -> RunRecord {
    let mut report = m.report(sim, status);
    driver.attach(&mut report);
    RunRecord::from_report(
        spec.key(),
        cfg.ni.key().to_string(),
        cfg.flow_buffers.to_string(),
        String::new(),
        fingerprint(cfg),
        &report,
        Vec::new(),
    )
}

/// The chaos loop for one traffic point: golden uninterrupted run, then
/// seeded mid-run kills, each serialized → reparsed → restored → resumed
/// and diffed byte-for-byte against the golden record.
fn assert_kill_and_resume_reproduces(spec: TrafficSpec, ni: NiKind, salt: u64) {
    let cfg = config(ni);
    let params = spec.params(cfg.nodes);

    let golden_driver = TrafficDriver::new(&cfg, &params);
    let mut golden = Machine::new(cfg.clone(), golden_driver.factory());
    let mut gsim = MachineSim::new();
    golden.start(&mut gsim);
    let status = golden.run_slice(&mut gsim, horizon(), MAX_EVENTS);
    let events = gsim.events_fired();
    let golden_record = record_of(spec, &cfg, &golden, &gsim, status, &golden_driver);
    assert!(
        golden_record.quiescent,
        "{}/{}: golden run did not drain",
        spec.key(),
        ni.key()
    );
    assert!(
        !golden_record.tenants.is_empty(),
        "golden record must carry tenant percentiles"
    );
    let golden_bytes = golden_record.to_json().to_compact();

    let mut rng = SplitMix64::new(CHAOS_SEED ^ salt);
    for _ in 0..CUTS_PER_POINT {
        let cut = 1 + rng.gen_range(events.saturating_sub(2).max(1));
        let driver = TrafficDriver::new(&cfg, &params);
        let mut m = Machine::new(cfg.clone(), driver.factory());
        let mut sim = MachineSim::new();
        m.start(&mut sim);
        m.run_slice(&mut sim, horizon(), cut);
        let bytes = save(&m, &mut sim)
            .unwrap_or_else(|e| panic!("snapshot at cut {cut} failed: {e}"))
            .to_compact();
        drop(m);
        drop(sim);
        drop(driver);

        // A fresh driver, as a restarted process would build: the sink
        // starts empty and the restored injectors repopulate it.
        let parsed = nisim_engine::json::parse(&bytes)
            .unwrap_or_else(|e| panic!("snapshot reparse at cut {cut} failed: {e:?}"));
        let resumed_driver = TrafficDriver::new(&cfg, &params);
        let (mut resumed, mut rsim) = restore(cfg.clone(), resumed_driver.factory(), &parsed)
            .unwrap_or_else(|e| panic!("restore at cut {cut} failed: {e}"));
        let rstatus = resumed.run_slice(&mut rsim, horizon(), MAX_EVENTS);
        let resumed_record = record_of(spec, &cfg, &resumed, &rsim, rstatus, &resumed_driver);
        assert_eq!(
            golden_bytes,
            resumed_record.to_json().to_compact(),
            "{}/{}: resumed run diverged from golden at cut {cut} ({events} events)",
            spec.key(),
            ni.key()
        );
    }
}

/// Poisson/uniform: checkpoints land between scheduled arrivals, so the
/// restored injector must resume with its drawn-but-unfired next-arrival
/// instant intact.
#[test]
fn poisson_traffic_survives_kill_and_resume() {
    let spec = TrafficSpec {
        kind: TrafficKind::PoissonUniform,
        level: 3,
    };
    assert_kill_and_resume_reproduces(spec, NiKind::Cni32Qm, 1);
}

/// MMPP adds the modulating state machine: cuts can land mid-dwell, and
/// the restored injector must keep the same state until the same switch
/// instant before redrawing at the other rate.
#[test]
fn mmpp_traffic_survives_kill_and_resume() {
    let spec = TrafficSpec {
        kind: TrafficKind::MmppUniform,
        level: 3,
    };
    assert_kill_and_resume_reproduces(spec, NiKind::Cm5, 2);
}

/// The tenant mix exercises the multi-tenant sink merge on restore: two
/// services' histograms rebuilt from per-node owned state, exactly once.
/// (Only the CM-5 and CNI models implement checkpointing, so the mix
/// rides the most stateful of the two.)
#[test]
fn tenant_mix_traffic_survives_kill_and_resume() {
    let spec = TrafficSpec {
        kind: TrafficKind::TenantMix,
        level: 3,
    };
    assert_kill_and_resume_reproduces(spec, NiKind::Cni32Qm, 3);
}

/// Incast concentrates flow-control retries on the sink node; cuts land
/// while return-to-sender retries are in flight.
#[test]
fn incast_traffic_survives_kill_and_resume() {
    let spec = TrafficSpec {
        kind: TrafficKind::PoissonIncast,
        level: 2,
    };
    assert_kill_and_resume_reproduces(spec, NiKind::Cm5, 4);
}

/// The RDMA queue-pair NI carries the roster's most restore-sensitive
/// state: cuts land with a warm QP-state cache, and the restored LRU
/// order must replay the same hit/miss sequence or latencies diverge.
#[test]
fn rdma_qp_traffic_survives_kill_and_resume() {
    let spec = TrafficSpec {
        kind: TrafficKind::PoissonUniform,
        level: 3,
    };
    assert_kill_and_resume_reproduces(spec, NiKind::RdmaQp, 5);
}

/// The SGDMA NI stages a decoded descriptor between the stage hook and
/// the deposit; a cut between the two must restore the staged geometry.
#[test]
fn sgdma_traffic_survives_kill_and_resume() {
    let spec = TrafficSpec {
        kind: TrafficKind::PoissonIncast,
        level: 2,
    };
    assert_kill_and_resume_reproduces(spec, NiKind::Sgdma, 6);
}
