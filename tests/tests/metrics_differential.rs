//! Differential tests for the observability layer: cycle accounting is
//! pure observation, so a metrics-on run must agree with the committed
//! metrics-off golden on every simulation-visible field — same elapsed
//! time, same counters, same fingerprint — and differ only by the
//! presence of the `breakdown` payload. A metrics-off run must stay
//! byte-identical to the seed schema (no `breakdown` key at all).

use nisim_bench::record::{self, RunRecord};
use nisim_bench::{fig3a_sweep, golden_path, Patch};
use nisim_workloads::apps::MacroApp;

/// The committed fig3a golden records (metrics off by construction).
fn golden_fig3a() -> Vec<RunRecord> {
    let text = std::fs::read_to_string(golden_path()).expect("committed golden grid");
    let sections = record::parse_document(&text).expect("golden grid parses");
    sections
        .into_iter()
        .find(|(name, _)| name == "fig3a")
        .expect("golden grid has a fig3a section")
        .1
}

fn golden_twin<'a>(golden: &'a [RunRecord], r: &RunRecord) -> &'a RunRecord {
    record::lookup(golden, &r.work, &r.ni, &r.buffers, &r.patch)
        .unwrap_or_else(|| panic!("no golden twin for {}/{}/{}", r.work, r.ni, r.buffers))
}

/// Metrics ON: every simulation-visible field matches the committed
/// metrics-off golden exactly (including the config fingerprint, which
/// deliberately excludes the metrics switch), and every record carries
/// a breakdown whose components sum to its total.
#[test]
fn metrics_on_records_match_the_committed_golden_field_for_field() {
    let golden = golden_fig3a();
    let on = fig3a_sweep(&[MacroApp::Em3d])
        .patches(vec![Patch {
            metrics: true,
            ..Patch::default()
        }])
        .run(2);
    assert!(!on.is_empty());
    for r in &on {
        let b = r
            .breakdown
            .as_ref()
            .expect("metrics-on record has a breakdown");
        let sum: u64 = b.cycles.iter().map(|(_, ns)| ns).sum();
        assert_eq!(
            sum,
            b.cycles.total().as_ns(),
            "{}/{}: sum to total",
            r.ni,
            r.buffers
        );
        assert!(
            !b.cycles.is_empty(),
            "{}/{}: accounted nothing",
            r.ni,
            r.buffers
        );

        let mut stripped = r.clone();
        stripped.breakdown = None;
        assert_eq!(
            &stripped,
            golden_twin(&golden, r),
            "{}/{}: metrics changed a simulation-visible field",
            r.ni,
            r.buffers
        );
    }
}

/// Metrics OFF: records re-run today are byte-identical to the seed
/// schema — equal to the golden and serialized without any
/// `breakdown` key.
#[test]
fn metrics_off_records_stay_byte_identical_to_the_golden() {
    let golden = golden_fig3a();
    let off = fig3a_sweep(&[MacroApp::Em3d]).run(2);
    assert!(!off.is_empty());
    for r in &off {
        assert_eq!(r.breakdown, None);
        let twin = golden_twin(&golden, r);
        assert_eq!(r, twin, "{}/{}: drifted from golden", r.ni, r.buffers);
        let text = r.to_json().to_pretty();
        assert!(
            !text.contains("breakdown"),
            "{}/{}: metrics-off record must not mention breakdown",
            r.ni,
            r.buffers
        );
        assert_eq!(
            text,
            twin.to_json().to_pretty(),
            "{}/{}: serialization drifted",
            r.ni,
            r.buffers
        );
    }
}
