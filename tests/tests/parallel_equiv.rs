//! Parallel == serial differential suite.
//!
//! The conservative epoch driver (`nisim_core::epoch`) promises
//! *byte-identical* results at any worker count: identical
//! `RunRecord`s, identical traces, identical statuses, identical
//! violation logs. This suite is that promise's lock. Every test runs
//! the same configuration serially (`workers = 0`, the classic watched
//! loop) and at several worker counts, and compares the canonical JSON
//! rendering of the full record — counters, histograms, accounting,
//! latency summaries, everything the goldens hash — byte for byte.
//!
//! Set `NISIM_TEST_WORKERS=<n>` to restrict the non-serial side to one
//! worker count (the CI thread matrix runs the suite once at 1 and once
//! at 4); unset, every test sweeps workers ∈ {1, 2, 4, 8}.

use nisim_bench::harness::{run_point, Patch, SweepPoint, Work};
use nisim_core::process::Process;
use nisim_core::{Machine, MachineConfig, MachineSim, NiKind};
use nisim_engine::Time;
use nisim_net::{BufferCount, CrashWindow, FaultConfig, NodeId, ReliabilityConfig};
use nisim_workloads::apps::factory as app_factory;
use nisim_workloads::apps::MacroApp;

/// The worker counts the differential sweeps on the parallel side.
fn worker_counts() -> Vec<u32> {
    match std::env::var("NISIM_TEST_WORKERS") {
        Ok(v) => {
            let n: u32 = v
                .parse()
                .unwrap_or_else(|_| panic!("NISIM_TEST_WORKERS must be a number, got {v:?}"));
            vec![n.max(1)]
        }
        Err(_) => vec![1, 2, 4, 8],
    }
}

/// Runs one grid point at the given worker setting and returns the
/// record's canonical byte rendering.
fn record_bytes(point: &SweepPoint, workers: Option<u32>) -> String {
    let mut p = point.clone();
    p.patch.workers = workers;
    run_point(&p).to_json().to_compact()
}

fn assert_point_equivalent(point: &SweepPoint) {
    let serial = record_bytes(point, None);
    for w in worker_counts() {
        let parallel = record_bytes(point, Some(w));
        assert_eq!(
            serial,
            parallel,
            "{}/{}: workers={w} diverged from serial",
            point.work.key(),
            point.ni.key(),
        );
    }
}

/// The twelve NI designs the suite covers: the seven of Table 2, the
/// single-cycle and throttled variants, and the three modern designs.
const NIS: [NiKind; 12] = [
    NiKind::Cm5,
    NiKind::Cm5SingleCycle,
    NiKind::Udma,
    NiKind::Ap3000,
    NiKind::StartJr,
    NiKind::MemoryChannel,
    NiKind::Cni512Q,
    NiKind::Cni32Qm,
    NiKind::Cni32QmThrottle,
    NiKind::RdmaQp,
    NiKind::Urma,
    NiKind::Sgdma,
];

const APPS: [MacroApp; 3] = [MacroApp::Em3d, MacroApp::Moldyn, MacroApp::Spsolve];

/// The tentpole lock: the full 12-NI × 3-app grid produces byte-identical
/// records at every worker count.
#[test]
fn grid_records_are_byte_identical_at_every_worker_count() {
    for ni in NIS {
        for app in APPS {
            let point = SweepPoint {
                work: Work::Macro(app),
                ni,
                buffers: BufferCount::Finite(8),
                patch: Patch::default(),
            };
            assert_point_equivalent(&point);
        }
    }
}

/// Micro workloads exercise different machine shapes (2-node, tight
/// round trips, streaming flow-control backpressure) — same promise.
#[test]
fn micro_records_are_byte_identical_at_every_worker_count() {
    for (work, ni) in [
        (Work::RoundTrip(64), NiKind::Cm5),
        (Work::RoundTrip(4096), NiKind::Cni32Qm),
        (Work::Bandwidth(256), NiKind::Ap3000),
        (
            Work::Bursty {
                bursts: 8,
                burst_len: 16,
                gap_ns: 2_000,
            },
            NiKind::StartJr,
        ),
        (Work::ConnSweep(256), NiKind::RdmaQp),
        (Work::ConnSweep(16), NiKind::Urma),
        (
            Work::Strided(nisim_workloads::micro::strided::StridedStrategy::Gathered),
            NiKind::Sgdma,
        ),
    ] {
        let point = SweepPoint {
            work,
            ni,
            buffers: BufferCount::Finite(8),
            patch: Patch::default(),
        };
        assert_point_equivalent(&point);
    }
}

/// Infinite buffering and packet-drop faults (reliability layer on, so
/// the fault plan's RNG stream and retransmission timers are live).
#[test]
fn faulted_records_are_byte_identical_at_every_worker_count() {
    for ni in [NiKind::Cm5, NiKind::Cni32Qm] {
        let point = SweepPoint {
            work: Work::Macro(MacroApp::Em3d),
            ni,
            buffers: BufferCount::Finite(8),
            patch: Patch {
                drop_pct: Some(4),
                ..Patch::default()
            },
        };
        assert_point_equivalent(&point);
    }
    let inf = SweepPoint {
        work: Work::Macro(MacroApp::Moldyn),
        ni: NiKind::Udma,
        buffers: BufferCount::Infinite,
        patch: Patch::default(),
    };
    assert_point_equivalent(&inf);
}

fn crash_cfg() -> MachineConfig {
    MachineConfig::with_ni(NiKind::Cm5)
        .nodes(4)
        .flow_buffers(BufferCount::Finite(4))
        .fault(FaultConfig {
            drop_p: 0.02,
            crash: vec![
                CrashWindow {
                    start: Time::from_ns(2_000),
                    end: Time::from_ns(6_000),
                    node: NodeId(1),
                },
                CrashWindow {
                    start: Time::from_ns(10_000),
                    end: Time::from_ns(12_000),
                    node: NodeId(3),
                },
            ],
            ..FaultConfig::default()
        })
        .reliability(ReliabilityConfig::on())
}

fn crash_factory() -> Box<dyn FnMut(NodeId) -> Box<dyn Process>> {
    app_factory(MacroApp::Em3d, 4, 7, MacroApp::Em3d.default_params())
}

/// Node-crash windows under packet loss: the epoch driver must replay
/// the crash wipe, the retransmissions, and the fault RNG draws in the
/// exact serial order.
#[test]
fn crash_window_runs_are_byte_identical_at_every_worker_count() {
    let serial = format!("{:?}", Machine::run(crash_cfg(), crash_factory()));
    for w in worker_counts() {
        let mut cfg = crash_cfg();
        cfg.workers = w;
        let parallel = format!("{:?}", Machine::run(cfg, crash_factory()));
        assert_eq!(serial, parallel, "workers={w} diverged under crash faults");
    }
}

/// Message-lifecycle traces record per-event effects in fire order; the
/// replay must reconstruct the identical stream.
#[test]
fn traced_runs_are_byte_identical_at_every_worker_count() {
    let cfg = || {
        MachineConfig::with_ni(NiKind::Ap3000)
            .nodes(4)
            .flow_buffers(BufferCount::Finite(4))
    };
    let factory = || app_factory(MacroApp::Spsolve, 4, 11, MacroApp::Spsolve.default_params());
    let (serial_report, serial_trace) = Machine::run_traced(cfg(), factory());
    for w in worker_counts() {
        let mut c = cfg();
        c.workers = w;
        let (report, trace) = Machine::run_traced(c, factory());
        assert_eq!(
            format!("{serial_report:?}"),
            format!("{report:?}"),
            "workers={w}: traced report diverged"
        );
        assert_eq!(
            serial_trace, trace,
            "workers={w}: message-lifecycle trace diverged"
        );
    }
}

/// Event-budget slicing (the chaos suite's kill-and-resume shape): tiny
/// budgets keep the driver inside its serial-exact guard band, so every
/// slice boundary and the final report must match the serial run.
#[test]
fn budget_sliced_runs_are_byte_identical_at_every_worker_count() {
    let cfg = |workers: u32| {
        let mut c = MachineConfig::with_ni(NiKind::Cni32Qm)
            .nodes(4)
            .flow_buffers(BufferCount::Finite(4));
        c.workers = workers;
        c
    };
    let factory = || app_factory(MacroApp::Moldyn, 4, 3, MacroApp::Moldyn.default_params());
    let horizon = Time::from_ns(10_000_000_000);

    let run_sliced = |workers: u32| {
        let mut m = Machine::new(cfg(workers), factory());
        let mut sim = MachineSim::new();
        m.start(&mut sim);
        let mut statuses = Vec::new();
        for _ in 0..10_000 {
            let status = m.run_slice(&mut sim, horizon, 500);
            statuses.push(status);
            if status != nisim_engine::SimStatus::EventBudgetExhausted {
                break;
            }
        }
        let status = *statuses.last().unwrap();
        (statuses, format!("{:?}", m.report(&sim, status)))
    };

    let (serial_statuses, serial_report) = run_sliced(0);
    assert!(
        serial_statuses.len() > 2,
        "workload too small to slice meaningfully"
    );
    for w in worker_counts() {
        let (statuses, report) = run_sliced(w);
        assert_eq!(serial_statuses, statuses, "workers={w}: slice statuses");
        assert_eq!(serial_report, report, "workers={w}: sliced report diverged");
    }
}

/// Open-loop traffic points: the injectors' arrival RNG streams, the
/// poll-quantum sleep chopping, and the shared tenant sink merges must
/// all replay into the exact serial order — including the per-tenant
/// latency histograms the record now carries.
#[test]
fn traffic_records_are_byte_identical_at_every_worker_count() {
    use nisim_workloads::traffic::{TrafficKind, TrafficSpec};
    for (kind, ni) in [
        (TrafficKind::PoissonUniform, NiKind::Cni32Qm),
        (TrafficKind::PoissonIncast, NiKind::Cm5),
        (TrafficKind::TenantMix, NiKind::Ap3000),
    ] {
        let point = SweepPoint {
            work: Work::Traffic(TrafficSpec { kind, level: 3 }),
            ni,
            buffers: BufferCount::Finite(8),
            patch: Patch::default(),
        };
        assert_point_equivalent(&point);
    }
}

/// Zero wire latency means zero lookahead: the driver must fall back to
/// the serial loop rather than run empty epochs, and still match.
#[test]
fn zero_lookahead_falls_back_to_serial() {
    let point = SweepPoint {
        work: Work::Macro(MacroApp::Em3d),
        ni: NiKind::Cm5,
        buffers: BufferCount::Finite(8),
        patch: Patch {
            wire_latency_ns: Some(0),
            ..Patch::default()
        },
    };
    assert_point_equivalent(&point);
}

/// Metrics-enabled runs carry per-component cycle breakdowns populated
/// through the op replay (spans, RTT and queue histograms).
#[test]
fn metrics_records_are_byte_identical_at_every_worker_count() {
    let point = SweepPoint {
        work: Work::Macro(MacroApp::Em3d),
        ni: NiKind::MemoryChannel,
        buffers: BufferCount::Finite(8),
        patch: Patch {
            metrics: true,
            ..Patch::default()
        },
    };
    assert_point_equivalent(&point);
}
