//! Static-vs-dynamic agreement: the per-cache MOESI states the model
//! checker proves reachable must equal the states processor caches
//! actually pass through during a smoke-scale run.
//!
//! The dynamic half comes from the debug-build visit bitmap in
//! `nisim_mem::Cache` (surfaced as `MachineReport::moesi_visited`), so
//! the comparison only exists in debug builds — in release the bitmap
//! compiles to a constant zero and this test is compiled out.
//!
//! Divergence in either direction is a finding: a state the checker
//! reaches but no run exercises means the workloads under-cover the
//! protocol; a state a run visits but the checker cannot reach means
//! the bounded model is missing a transition.

#![cfg(debug_assertions)]

use nisim_analysis::MoesiChecker;
use nisim_core::{MachineConfig, NiKind};
use nisim_engine::Dur;
use nisim_workloads::apps::{run_app, AppParams, MacroApp};

#[test]
fn checker_reachable_states_match_observed_states() {
    let static_mask = MoesiChecker::new().check().reachable_mask;
    assert_eq!(static_mask, 0b1_1111, "checker must reach all five states");

    let params = AppParams {
        iterations: 2,
        intensity: 2,
        compute: Dur::us(2),
    };
    // A coherent NI (the NI snoops the processor cache, exercising
    // M -> O supplies), a classical one (plain fills and
    // invalidations), and StarT-Jr (whose receive path fills from main
    // memory with no other sharer, installing Exclusive) cover the
    // full state set between them.
    let mut dynamic_mask = 0u8;
    for (app, ni) in [
        (MacroApp::Em3d, NiKind::Cni32Qm),
        (MacroApp::Appbt, NiKind::Cm5),
        (MacroApp::Moldyn, NiKind::Cni512Q),
        (MacroApp::Spsolve, NiKind::StartJr),
    ] {
        let cfg = MachineConfig::with_ni(ni).nodes(8);
        let r = run_app(app, &cfg, &params);
        assert!(r.all_quiescent, "{app} on {ni} not quiescent");
        dynamic_mask |= r.moesi_visited;
    }
    assert_eq!(
        dynamic_mask, static_mask,
        "states observed dynamically (bitmap {dynamic_mask:#07b}, bit order MOESI) diverge \
         from the checker's reachable set ({static_mask:#07b})"
    );
}
