//! Property tests for the machine-readable result records: JSON
//! serialization must be a lossless round trip AND a fixed point (the
//! bytes a parsed document re-serializes to are the bytes it came from —
//! the guarantee the golden byte-comparison and the `--jobs` determinism
//! tests lean on), and execution-time accounting must be complete.
//!
//! The container is offline (no proptest), so the generator is a small
//! hand-rolled LCG — deterministic, so failures reproduce exactly.

use nisim_bench::record::{
    document, parse_document, sweep_to_json, LatencyBrief, RunRecord, StallBrief, TenantBrief,
};
use nisim_bench::{Patch, Sweep};
use nisim_core::{NiKind, TimeCategory};
use nisim_engine::json::parse;
use nisim_engine::metrics::{Component, MetricsBreakdown};
use nisim_engine::Dur;
use nisim_net::BufferCount;
use nisim_workloads::apps::{AppParams, MacroApp};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// A finite, sign-varied f64 with both integral and fractional cases.
    fn float(&mut self) -> f64 {
        let numer = self.below(1 << 53) as f64;
        let denom = (self.below(1000) + 1) as f64;
        let sign = if self.below(2) == 0 { 1.0 } else { -1.0 };
        sign * numer / denom
    }
}

/// A synthetic observability payload, built through the safe
/// charge/record API so the sum-to-total invariant holds by
/// construction (as it must for `from_json` to accept it back).
fn arbitrary_breakdown(rng: &mut Lcg) -> MetricsBreakdown {
    let mut b = MetricsBreakdown::default();
    for _ in 0..rng.below(40) {
        let c = Component::ALL[rng.below(Component::ALL.len() as u64) as usize];
        b.cycles.charge(c, Dur::ns(rng.next() >> 24));
    }
    for _ in 0..rng.below(20) {
        b.msg_rtt.record(rng.next() >> rng.below(60));
        b.frag_queue.record(rng.below(1 << 20));
        b.bus_grant_wait.record(rng.below(4096));
    }
    b
}

fn arbitrary_record(rng: &mut Lcg) -> RunRecord {
    let statuses = ["drained", "horizon", "event-budget", "stalled"];
    let status = statuses[rng.below(4) as usize].to_string();
    let stall = if status == "stalled" {
        Some(StallBrief {
            at_ns: rng.next() >> 12,
            reason: format!("no progress for {} ns", rng.below(1_000_000)),
            wedged: rng.below(64),
        })
    } else {
        None
    };
    let counters = (0..rng.below(8))
        .map(|i| (format!("counter_{i}"), rng.next() >> 11))
        .collect();
    let msg_sizes = (0..rng.below(5))
        .map(|_| (rng.below(4096), rng.below(10_000)))
        .collect();
    let metrics = (0..rng.below(4))
        .map(|i| (format!("metric_{i}"), rng.float()))
        .collect();
    let count = rng.below(1000);
    RunRecord {
        work: format!("work:{}", rng.below(100)),
        ni: format!("ni{}", rng.below(10)),
        buffers: if rng.below(2) == 0 {
            "inf".to_string()
        } else {
            rng.below(64).to_string()
        },
        patch: if rng.below(2) == 0 {
            String::new()
        } else {
            format!("patch={}", rng.below(100))
        },
        fingerprint: format!("{:016x}", rng.next()),
        status,
        quiescent: rng.below(2) == 0,
        // Shifted into the f64-exact integer range the JSON layer allows.
        elapsed_ns: rng.next() >> 11,
        accounting_ns: [
            rng.next() >> 12,
            rng.next() >> 12,
            rng.next() >> 12,
            rng.next() >> 12,
        ],
        counters,
        msg_sizes,
        latency: if count == 0 {
            LatencyBrief {
                count: 0,
                mean_ns: 0.0,
                min_ns: 0.0,
                max_ns: 0.0,
            }
        } else {
            LatencyBrief {
                count,
                mean_ns: rng.float().abs(),
                min_ns: rng.float().abs(),
                max_ns: rng.float().abs(),
            }
        },
        metrics,
        stall,
        breakdown: if rng.below(3) == 0 {
            Some(arbitrary_breakdown(rng))
        } else {
            None
        },
        tenants: (0..rng.below(4))
            .map(|i| {
                let mut latency = nisim_engine::metrics::Log2Hist::default();
                for _ in 0..rng.below(30) {
                    latency.record(rng.next() >> rng.below(50));
                }
                TenantBrief {
                    name: format!("tenant{i}"),
                    offered: rng.below(10_000),
                    delivered: rng.below(10_000),
                    p50_ns: rng.float().abs(),
                    p99_ns: rng.float().abs(),
                    p999_ns: rng.float().abs(),
                    latency,
                }
            })
            .collect(),
    }
}

/// serialize -> parse -> deserialize reproduces the record exactly, and
/// serialize(parse(text)) == text, over a wide space of synthetic
/// records (including stalled ones and awkward floats).
#[test]
fn json_round_trip_is_lossless_and_a_fixed_point() {
    let mut rng = Lcg(0x5eed_0001);
    for i in 0..200 {
        let record = arbitrary_record(&mut rng);
        let json = record.to_json();
        let text = json.to_pretty();
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("case {i}: {e}"));
        assert_eq!(
            reparsed.to_pretty(),
            text,
            "case {i}: serialization must be a fixed point"
        );
        let back = RunRecord::from_json(&reparsed)
            .unwrap_or_else(|e| panic!("case {i}: deserialize: {e}"));
        assert_eq!(back, record, "case {i}: round trip must be lossless");
    }
}

/// Whole documents (multiple sweeps of synthetic records) survive the
/// parse_document round trip byte for byte.
#[test]
fn documents_round_trip_byte_for_byte() {
    let mut rng = Lcg(0x5eed_0002);
    for _ in 0..20 {
        let sections: Vec<(String, Vec<RunRecord>)> = (0..rng.below(4) + 1)
            .map(|s| {
                let records = (0..rng.below(6))
                    .map(|_| arbitrary_record(&mut rng))
                    .collect();
                (format!("sweep-{s}"), records)
            })
            .collect();
        let doc = document(sections.iter().map(|(n, r)| sweep_to_json(n, r)).collect());
        let text = doc.to_pretty();
        let parsed = parse_document(&text).expect("document parses");
        assert_eq!(parsed, sections);
        let again = document(parsed.iter().map(|(n, r)| sweep_to_json(n, r)).collect());
        assert_eq!(again.to_pretty(), text, "document must be a fixed point");
    }
}

/// Records produced by real runs account for every nanosecond: the four
/// category fractions sum to 1 (and each is within [0, 1]), across NIs,
/// buffer levels and seeds.
#[test]
fn real_records_account_for_all_time() {
    let params = AppParams {
        iterations: 2,
        intensity: 2,
        compute: Dur::us(2),
    };
    let patches = (0..3)
        .map(|i| Patch {
            label: format!("seed={i}"),
            nodes: Some(4),
            seed: Some(i),
            params: Some(params),
            ..Patch::default()
        })
        .collect();
    let sweep = Sweep::new("accounting-props")
        .apps(&[MacroApp::Em3d, MacroApp::Spsolve])
        .nis(&[NiKind::Cm5, NiKind::Cni32Qm])
        .buffers(&[BufferCount::Finite(1), BufferCount::Infinite])
        .patches(patches);
    let records = sweep.run(2);
    assert_eq!(records.len(), 2 * 2 * 2 * 3);
    for r in &records {
        assert!(
            r.accounted_ns() > 0,
            "{}/{} accounted nothing",
            r.work,
            r.ni
        );
        let mut sum = 0.0;
        for &cat in &TimeCategory::ALL {
            let f = r.fraction(cat);
            assert!((0.0..=1.0).contains(&f), "{}/{} {cat:?}: {f}", r.work, r.ni);
            sum += f;
        }
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "{}/{}/{}: fractions sum to {sum}",
            r.work,
            r.ni,
            r.patch
        );
        // And these real records round-trip too.
        let back = RunRecord::from_json(&r.to_json()).expect("round trip");
        assert_eq!(&back, r);
    }
}
