//! Executable acceptance criteria: the paper's qualitative results
//! (DESIGN.md §5) asserted against the simulator. These are the
//! macro-level claims; the microbenchmark orderings of Table 5 are
//! asserted in `nisim-bench`'s unit tests.

use nisim_core::{MachineConfig, NiKind, TimeCategory};
use nisim_net::BufferCount;
use nisim_workloads::apps::{run_app, MacroApp};

fn elapsed(app: MacroApp, ni: NiKind, buffers: BufferCount) -> f64 {
    let cfg = MachineConfig::with_ni(ni).flow_buffers(buffers);
    run_app(app, &cfg, &app.default_params()).elapsed.as_ns() as f64
}

/// §6.2.1: with infinite buffering, the AP3000-like NI is the fastest of
/// the three FIFO NIs and the UDMA-based NI is at least as fast as the
/// CM-5-like NI.
#[test]
fn fifo_ordering_with_infinite_buffers() {
    for app in [MacroApp::Appbt, MacroApp::Em3d, MacroApp::Unstructured] {
        let cm5 = elapsed(app, NiKind::Cm5, BufferCount::Infinite);
        let udma = elapsed(app, NiKind::Udma, BufferCount::Infinite);
        let ap = elapsed(app, NiKind::Ap3000, BufferCount::Infinite);
        assert!(udma <= cm5 * 1.02, "{app}: udma {udma} vs cm5 {cm5}");
        assert!(ap < udma, "{app}: ap {ap} vs udma {udma}");
    }
}

/// §6.2.1: going from one to two flow-control buffers helps every FIFO
/// NI on the communication-heavy applications.
#[test]
fn one_to_two_buffers_helps() {
    for app in [MacroApp::Barnes, MacroApp::Em3d] {
        for ni in [NiKind::Cm5, NiKind::Ap3000] {
            let b1 = elapsed(app, ni, BufferCount::Finite(1));
            let b2 = elapsed(app, ni, BufferCount::Finite(2));
            assert!(b2 < b1, "{app} on {ni}: B=2 ({b2}) should beat B=1 ({b1})");
        }
    }
}

/// §6.2.1: em3d keeps improving well beyond two buffers (its paper
/// breakeven is 128), unlike the request/response applications.
#[test]
fn em3d_wants_deep_buffering() {
    let b2 = elapsed(MacroApp::Em3d, NiKind::Cm5, BufferCount::Finite(2));
    let binf = elapsed(MacroApp::Em3d, NiKind::Cm5, BufferCount::Infinite);
    assert!(
        b2 > 1.12 * binf,
        "em3d 2->inf should improve >12%: {b2} vs {binf}"
    );
    let appbt2 = elapsed(MacroApp::Appbt, NiKind::Cm5, BufferCount::Finite(2));
    let appbt_inf = elapsed(MacroApp::Appbt, NiKind::Cm5, BufferCount::Infinite);
    assert!(
        appbt2 < 1.12 * appbt_inf,
        "appbt should gain little beyond 2 buffers"
    );
}

/// §6.2.2: the coherent NIs are largely insensitive to the flow-control
/// buffer count (NI-managed, plentiful buffering in memory).
#[test]
fn coherent_nis_are_buffer_insensitive() {
    for ni in [NiKind::StartJr, NiKind::Cni32Qm] {
        let b1 = elapsed(MacroApp::Em3d, ni, BufferCount::Finite(1));
        let b8 = elapsed(MacroApp::Em3d, ni, BufferCount::Finite(8));
        let ratio = b1 / b8;
        // "Largely insensitive": a small residual sensitivity remains in
        // our model because the one flow-control buffer is occupied for
        // the deposit duration; compare CM-5's ~1.4x over the same sweep.
        assert!((0.95..=1.2).contains(&ratio), "{ni} em3d B1/B8 = {ratio}");
    }
}

/// §6.2.2: CNI_32Qm is the best of the four coherent NIs, and loses to
/// the AP3000-like NI only on unstructured (whose bulk streams favour
/// raw bandwidth).
#[test]
fn cni32qm_wins_among_coherent_nis() {
    for app in [MacroApp::Appbt, MacroApp::Em3d, MacroApp::Unstructured] {
        let c32 = elapsed(app, NiKind::Cni32Qm, BufferCount::Finite(1));
        for other in [NiKind::StartJr, NiKind::Cni512Q] {
            let o = elapsed(app, other, BufferCount::Finite(1));
            assert!(c32 <= o * 1.02, "{app}: CNI_32Qm ({c32}) vs {other} ({o})");
        }
    }
    // The unstructured exception: AP3000@8 beats CNI_32Qm there.
    let ap = elapsed(
        MacroApp::Unstructured,
        NiKind::Ap3000,
        BufferCount::Finite(8),
    );
    let c32 = elapsed(
        MacroApp::Unstructured,
        NiKind::Cni32Qm,
        BufferCount::Finite(1),
    );
    assert!(c32 > ap, "unstructured should favour the AP3000-like NI");
    // ...but em3d favours CNI_32Qm's buffering.
    let ap_em3d = elapsed(MacroApp::Em3d, NiKind::Ap3000, BufferCount::Finite(8));
    let c32_em3d = elapsed(MacroApp::Em3d, NiKind::Cni32Qm, BufferCount::Finite(1));
    assert!(c32_em3d < ap_em3d, "em3d should favour CNI_32Qm");
}

/// §6.2.2: CNI_32Qm sharply reduces main-memory-to-cache transfers
/// relative to the StarT-JR-like NI (the paper reports 54% on average)
/// by supplying messages NI-cache-to-processor-cache.
#[test]
fn cni32qm_cuts_memory_traffic() {
    let cfg32 = MachineConfig::with_ni(NiKind::Cni32Qm).flow_buffers(BufferCount::Finite(1));
    let cfgsj = MachineConfig::with_ni(NiKind::StartJr).flow_buffers(BufferCount::Finite(1));
    let p = MacroApp::Em3d.default_params();
    let r32 = run_app(MacroApp::Em3d, &cfg32, &p);
    let rsj = run_app(MacroApp::Em3d, &cfgsj, &p);
    assert!(
        (r32.mem_reads as f64) < 0.6 * rsj.mem_reads as f64,
        "CNI_32Qm {} vs StarT-JR {} memory reads",
        r32.mem_reads,
        rsj.mem_reads
    );
}

/// §6.3 / Figure 4: the single-cycle (register-mapped) NI_2w loses
/// ground as its buffering shrinks on the bursty applications —
/// register memory is precious, so small buffer pools are its realistic
/// operating point.
#[test]
fn single_cycle_ni_degrades_with_small_buffers() {
    let b1 = elapsed(
        MacroApp::Em3d,
        NiKind::Cm5SingleCycle,
        BufferCount::Finite(1),
    );
    let b32 = elapsed(
        MacroApp::Em3d,
        NiKind::Cm5SingleCycle,
        BufferCount::Finite(32),
    );
    assert!(
        b1 > 1.2 * b32,
        "em3d on the register-mapped NI: B=1 ({b1}) vs B=32 ({b32})"
    );
}

/// Figure 1: the two fine-grain bursty applications are dominated by
/// messaging (data transfer + buffering), while the solver apps keep a
/// substantial compute share.
#[test]
fn fig1_app_classes_differ() {
    let frac = |app: MacroApp, cat: TimeCategory| {
        let cfg = MachineConfig::with_ni(NiKind::Cm5).flow_buffers(BufferCount::Finite(1));
        run_app(app, &cfg, &app.default_params()).fraction(cat)
    };
    let em3d_msg = frac(MacroApp::Em3d, TimeCategory::DataTransfer)
        + frac(MacroApp::Em3d, TimeCategory::Buffering);
    assert!(em3d_msg > 0.6, "em3d messaging share {em3d_msg}");
    let appbt_compute = frac(MacroApp::Appbt, TimeCategory::Compute);
    assert!(appbt_compute > 0.25, "appbt compute share {appbt_compute}");
    let em3d_buf = frac(MacroApp::Em3d, TimeCategory::Buffering);
    assert!(em3d_buf > 0.15, "em3d buffering share at B=1: {em3d_buf}");
}
