//! Cross-crate property tests for the snapshot subsystem: the
//! reliability layer's dedup windows must survive the checkpoint file
//! round trip with their *behaviour* (not just their bytes) intact, and
//! a snapshot must never restore into a machine whose configuration
//! fingerprint differs — whichever knob was turned.
//!
//! The container is offline (no proptest), so the generator is a small
//! hand-rolled LCG — deterministic, so failures reproduce exactly.

use nisim_core::snapshot::{restore, save, SnapshotError};
use nisim_core::{Machine, MachineConfig, MachineSim, NiKind};
use nisim_engine::{json, Dur, Time};
use nisim_net::{BufferCount, NodeId, ReceiverDedup, ReliabilityConfig, SeqNo};
use nisim_workloads::apps::{factory, AppParams, MacroApp};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Feeds a dedup window a random arrival pattern — in-order runs,
/// reorderings, and duplicates — then round-trips it through its JSON
/// codec (via printed text, as a checkpoint file would) and checks the
/// copy gives byte-identical snapshots *and* identical accept verdicts
/// on a shared tail of further arrivals.
#[test]
fn receiver_dedup_behaviour_survives_the_file_round_trip() {
    let mut rng = Lcg(0x5eed_3001);
    for case in 0..60 {
        let mut dedup = ReceiverDedup::default();
        for _ in 0..rng.below(200) {
            let src = NodeId(rng.below(4) as u32);
            // Mostly-advancing sequences with frequent repeats and gaps.
            let seq = SeqNo(rng.below(40));
            dedup.accept(src, seq);
        }

        let text = dedup.snapshot().to_compact();
        let parsed = json::parse(&text).unwrap();
        let mut copy = ReceiverDedup::default();
        assert!(copy.restore(&parsed), "case {case}: restore rejected");
        assert_eq!(
            copy.snapshot().to_compact(),
            text,
            "case {case}: snapshot not idempotent"
        );

        for i in 0..100 {
            let src = NodeId(rng.below(4) as u32);
            let seq = SeqNo(rng.below(60));
            assert_eq!(
                dedup.already_seen(src, seq),
                copy.already_seen(src, seq),
                "case {case}@{i}: seen-set diverged"
            );
            assert_eq!(
                dedup.accept(src, seq),
                copy.accept(src, seq),
                "case {case}@{i}: accept verdicts diverged"
            );
        }
    }
}

fn base_config() -> MachineConfig {
    MachineConfig::with_ni(NiKind::Cm5)
        .nodes(4)
        .flow_buffers(BufferCount::Finite(4))
}

fn snap_params() -> AppParams {
    AppParams {
        iterations: 2,
        intensity: 4,
        compute: Dur::us(1),
    }
}

fn mid_run_snapshot(cfg: &MachineConfig) -> nisim_engine::Json {
    let mut m = Machine::new(
        cfg.clone(),
        factory(MacroApp::Em3d, cfg.nodes, cfg.seed, snap_params()),
    );
    let mut sim = MachineSim::new();
    m.start(&mut sim);
    m.run_slice(&mut sim, Time::from_ns(60_000_000_000), 25);
    save(&m, &mut sim).expect("snapshot")
}

/// Every configuration knob that feeds the fingerprint — seed, buffer
/// budget, NI kind, node count, watchdog window, reliability — must make
/// restore fail with [`SnapshotError::ConfigMismatch`], never silently
/// reinterpret the state. The unchanged config must keep restoring.
#[test]
fn any_config_perturbation_is_rejected_at_restore() {
    let cfg = base_config();
    let snap = mid_run_snapshot(&cfg);

    // Control: the honest config restores.
    let mk = |c: &MachineConfig| factory(MacroApp::Em3d, c.nodes, c.seed, snap_params());
    assert!(restore(cfg.clone(), mk(&cfg), &snap).is_ok());

    let mut rng = Lcg(0x5eed_3002);
    type Perturb = Box<dyn Fn(&mut MachineConfig, &mut Lcg)>;
    let perturbations: Vec<Perturb> = vec![
        Box::new(|c, r| c.seed = c.seed.wrapping_add(1 + r.below(100))),
        Box::new(|c, _| c.flow_buffers = BufferCount::Finite(5)),
        Box::new(|c, _| c.flow_buffers = BufferCount::Infinite),
        Box::new(|c, _| c.ni = NiKind::Cni32Qm),
        Box::new(|c, _| c.nodes += 1),
        Box::new(|c, r| c.watchdog_window = Dur::us(1000 + r.below(1000))),
        Box::new(|c, _| c.reliability = ReliabilityConfig::on()),
        Box::new(|c, r| *c = c.clone().qp_cache_entries(16 + r.below(48) as u32)),
    ];
    for (i, perturb) in perturbations.iter().enumerate() {
        for round in 0..5 {
            let mut wrong = cfg.clone();
            perturb(&mut wrong, &mut rng);
            let got = restore(wrong.clone(), mk(&wrong), &snap);
            match got {
                Err(SnapshotError::ConfigMismatch { .. }) => {}
                other => panic!(
                    "perturbation {i} round {round}: wanted ConfigMismatch, got {:?}",
                    other.map(|_| "Ok(machine)")
                ),
            }
        }
    }
}

/// Version-3 snapshots carry the connection id on every wire message.
/// A snapshot stamped with the previous version must be rejected as a
/// [`SnapshotError::Version`], and a wire `conn` forged past `u32::MAX`
/// must be rejected as [`SnapshotError::Malformed`] — never silently
/// truncated into a valid connection.
#[test]
fn stale_version_and_forged_conn_are_rejected() {
    let cfg = base_config();
    let snap = mid_run_snapshot(&cfg);
    let mk = |c: &MachineConfig| factory(MacroApp::Em3d, c.nodes, c.seed, snap_params());

    let stale = json::parse(&snap.to_compact().replace("\"version\":3", "\"version\":2")).unwrap();
    assert!(
        matches!(
            restore(cfg.clone(), mk(&cfg), &stale),
            Err(SnapshotError::Version { found: 2 })
        ),
        "a version-2 stamp must be refused"
    );

    // Tamper the first in-flight wire message's conn. Cuts grow until
    // one lands with a message on the wire (the key only appears there).
    let qcfg = MachineConfig::with_ni(NiKind::RdmaQp)
        .nodes(4)
        .flow_buffers(BufferCount::Finite(4));
    let mut tampered_once = false;
    for budget in [50u64, 200, 800, 3200, 12800] {
        let mut m = Machine::new(
            qcfg.clone(),
            factory(MacroApp::Em3d, qcfg.nodes, qcfg.seed, snap_params()),
        );
        let mut sim = MachineSim::new();
        m.start(&mut sim);
        m.run_slice(&mut sim, Time::from_ns(60_000_000_000), budget);
        let text = save(&m, &mut sim).expect("snapshot").to_compact();
        let Some(pos) = text.find("\"conn\":") else {
            continue;
        };
        let digits = pos + "\"conn\":".len();
        let end = digits
            + text[digits..]
                .find(|c: char| !c.is_ascii_digit())
                .expect("conn digits end");
        let forged = format!(
            "{}{}{}",
            &text[..digits],
            u64::from(u32::MAX) + 1,
            &text[end..]
        );
        let got = restore(qcfg.clone(), mk(&qcfg), &json::parse(&forged).unwrap());
        assert!(
            matches!(got, Err(SnapshotError::Malformed(_))),
            "an oversized conn must be malformed, got {:?}",
            got.map(|_| "Ok(machine)")
        );
        tampered_once = true;
        break;
    }
    assert!(
        tampered_once,
        "no cut caught a wire message in flight to tamper with"
    );
}

/// The fingerprint binds the snapshot to a *semantic* configuration, not
/// to observability settings: toggling metrics must not invalidate a
/// checkpoint taken without them.
#[test]
fn metrics_toggle_does_not_invalidate_a_snapshot() {
    let cfg = base_config();
    let snap = mid_run_snapshot(&cfg);
    let mut with_metrics = cfg.clone();
    with_metrics.metrics = nisim_engine::metrics::MetricsConfig::enabled();
    let got = restore(
        with_metrics.clone(),
        factory(MacroApp::Em3d, cfg.nodes, cfg.seed, snap_params()),
        &snap,
    );
    // Same fingerprint — but the snapshot has no metrics section while
    // the config demands one, so this is a *shape* error, not a
    // fingerprint rejection.
    assert!(
        !matches!(got, Err(SnapshotError::ConfigMismatch { .. })),
        "metrics must not change the fingerprint"
    );
}
