//! Golden shape-regression suite: every qualitative claim EXPERIMENTS.md
//! records, re-asserted from the **committed** machine-readable results
//! in `tests/goldens/golden_grid.json` — plus a byte-for-byte comparison
//! against a fresh in-process rerun, so any behavioural drift in the
//! simulator shows up as a golden mismatch even if it happens to keep
//! every shape claim true.
//!
//! Regenerate the golden file after an intended behaviour change with
//!
//! ```text
//! cargo run --release -p nisim-bench --bin goldens -- --update-goldens
//! ```

use nisim_bench::record::{lookup, parse_document, RunRecord};
use nisim_bench::{
    breakdown_document, breakdown_from_records, breakdown_golden_path, conn_sweep_from_records,
    curves_from_records, default_jobs, fault_study_from_records, fig1_differential_from_records,
    fig1_from_records, fig3a_sweep, fig3b_from_records, fig4_from_records, golden_document,
    golden_path, loadlat_golden_path, rdma_kink_from_records, strided_from_records,
    table5_from_records, LoadCurve,
};
use nisim_core::{NiKind, TimeCategory};
use nisim_workloads::apps::MacroApp;
use nisim_workloads::traffic::TrafficKind;

fn committed() -> Vec<(String, Vec<RunRecord>)> {
    let path = golden_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read the committed golden grid at {} ({e}); regenerate it with\n\
             `cargo run --release -p nisim-bench --bin goldens -- --update-goldens`",
            path.display()
        )
    });
    parse_document(&text).expect("committed golden grid parses")
}

fn section<'a>(doc: &'a [(String, Vec<RunRecord>)], name: &str) -> &'a [RunRecord] {
    &doc.iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("golden grid lacks sweep {name:?}"))
        .1
}

fn elapsed(records: &[RunRecord], work: &str, ni: NiKind, buffers: &str) -> f64 {
    lookup(records, work, ni.key(), buffers, "")
        .unwrap_or_else(|| panic!("missing golden record {work}/{}/{buffers}", ni.key()))
        .elapsed_ns as f64
}

/// Satellite guarantee: no golden run may have stalled, run out of
/// budget, or left an endpoint non-quiescent — a surprise stall in any
/// sweep is a regression even if the shapes still hold.
#[test]
fn golden_runs_all_drained_without_stalls() {
    let doc = committed();
    assert!(!doc.is_empty());
    for (name, records) in &doc {
        assert!(!records.is_empty(), "sweep {name} is empty");
        for r in records {
            assert_eq!(
                r.status, "drained",
                "{name}: {}/{} did not drain",
                r.work, r.ni
            );
            assert!(r.quiescent, "{name}: {}/{} not quiescent", r.work, r.ni);
            assert!(
                r.stall.is_none(),
                "{name}: {}/{} reports an unexpected stall: {:?}",
                r.work,
                r.ni,
                r.stall
            );
            let sum: f64 = TimeCategory::ALL.iter().map(|&c| r.fraction(c)).sum();
            assert!(
                r.accounted_ns() == 0 || (sum - 1.0).abs() < 1e-9,
                "{name}: {}/{} accounting incomplete ({sum})",
                r.work,
                r.ni
            );
        }
    }
}

/// Table 5 orderings and crossovers (EXPERIMENTS.md "Table 5"), from the
/// committed records.
#[test]
fn golden_table5_orderings() {
    let doc = committed();
    let (rows, throttled) = table5_from_records(section(&doc, "table5"));
    let get = |k: NiKind| rows.iter().find(|r| r.kind == k).expect("row");
    let cm5 = get(NiKind::Cm5);
    let udma = get(NiKind::Udma);
    let ap = get(NiKind::Ap3000);
    let sj = get(NiKind::StartJr);
    let mc = get(NiKind::MemoryChannel);
    let c512 = get(NiKind::Cni512Q);
    let c32 = get(NiKind::Cni32Qm);

    // CM-5 <-> UDMA latency crossover between 64 B and 256 B payloads.
    assert!(udma.rtt_us[0] > cm5.rtt_us[0], "udma worse at 8 B");
    assert!(udma.rtt_us[2] < cm5.rtt_us[2], "udma better at 256 B");
    // UDMA is otherwise the slowest; AP3000 >> UDMA.
    for i in 0..3 {
        assert!(udma.rtt_us[i] > ap.rtt_us[i], "udma vs ap at {i}");
    }
    assert!(ap.rtt_us[2] < 0.8 * udma.rtt_us[2]);
    // StarT-JR beats AP3000 below 64 B, loses at 256 B; MC tracks SJ.
    assert!(sj.rtt_us[0] < ap.rtt_us[0]);
    assert!(sj.rtt_us[2] > ap.rtt_us[2]);
    for i in 0..3 {
        let ratio = mc.rtt_us[i] / sj.rtt_us[i];
        assert!((0.85..=1.15).contains(&ratio), "MC vs SJ at {i}: {ratio}");
    }
    // CNI_512Q beats StarT-JR at the larger payloads.
    assert!(c512.rtt_us[2] < sj.rtt_us[2]);
    // CNI_32Qm has the best latency everywhere.
    for other in [cm5, udma, ap, sj, mc, c512] {
        for i in 0..3 {
            assert!(
                c32.rtt_us[i] <= other.rtt_us[i] * 1.001,
                "CNI_32Qm not best vs {:?} at {i}",
                other.kind
            );
        }
    }
    // Bandwidth: CM-5 plateaus lowest; UDMA worst at 8 B; AP3000 best
    // unthrottled; throttled CNI_32Qm fastest of all.
    for r in &rows {
        if r.kind != NiKind::Cm5 {
            assert!(r.bw_mb_s[3] > cm5.bw_mb_s[3], "{:?} vs cm5", r.kind);
        }
        assert!(udma.bw_mb_s[0] <= r.bw_mb_s[0], "udma worst at 8 B");
        if r.kind != NiKind::Ap3000 {
            assert!(ap.bw_mb_s[3] > r.bw_mb_s[3], "AP3000 top unthrottled");
        }
    }
    assert!(throttled > ap.bw_mb_s[3], "throttled CNI_32Qm is fastest");
    let ratio = c32.bw_mb_s[3] / sj.bw_mb_s[3];
    assert!((0.8..=1.25).contains(&ratio), "c32 vs sj bw: {ratio}");
}

/// Figure 1 decompositions (EXPERIMENTS.md "Figure 1"): complete
/// fractions, messaging-dominated bursty apps, compute-heavy solvers,
/// and the differential methodology's em3d-most-buffering-bound shape.
#[test]
fn golden_fig1_decompositions() {
    let doc = committed();
    let rows = fig1_from_records(section(&doc, "fig1"));
    assert_eq!(rows.len(), MacroApp::ALL.len());
    for r in &rows {
        let sum = r.compute + r.data_transfer + r.buffering + r.idle;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "{}: fractions sum to {sum}",
            r.app
        );
    }
    let by = |app: MacroApp| rows.iter().find(|r| r.app == app).expect("row");
    let em3d = by(MacroApp::Em3d);
    assert!(em3d.data_transfer + em3d.buffering > 0.6, "em3d messaging");
    assert!(em3d.buffering > 0.15, "em3d buffering at B=1");
    assert!(by(MacroApp::Appbt).compute > 0.25, "appbt compute share");

    let diff = fig1_differential_from_records(section(&doc, "fig1-differential"));
    let em3d = diff.iter().find(|r| r.app == MacroApp::Em3d).expect("em3d");
    for r in &diff {
        assert!(r.buffering >= 0.0 && r.data_transfer > 0.03, "{:?}", r.app);
        assert!(r.base > 0.0 && r.base <= 1.0, "{:?}", r.app);
        if r.app != MacroApp::Em3d {
            assert!(
                em3d.buffering >= r.buffering * 0.9,
                "em3d must be the most buffering-bound (vs {:?})",
                r.app
            );
        }
    }
}

/// Figure 3a claims (EXPERIMENTS.md "Figure 3a"): the FIFO ordering at
/// infinite buffering, the 1→2 buffer win, em3d's deep-buffering appetite
/// and buffering monotonicity.
#[test]
fn golden_fig3a_fifo_buffer_shapes() {
    let doc = committed();
    let recs = section(&doc, "fig3a");
    // §6.2.1 ordering with infinite buffering.
    for app in ["appbt", "em3d", "unstructured"] {
        let cm5 = elapsed(recs, app, NiKind::Cm5, "inf");
        let udma = elapsed(recs, app, NiKind::Udma, "inf");
        let ap = elapsed(recs, app, NiKind::Ap3000, "inf");
        assert!(udma <= cm5 * 1.02, "{app}: udma {udma} vs cm5 {cm5}");
        assert!(ap < udma, "{app}: ap {ap} vs udma {udma}");
    }
    // 1 -> 2 buffers helps the communication-heavy apps on every FIFO NI.
    for app in ["barnes", "em3d"] {
        for ni in [NiKind::Cm5, NiKind::Ap3000] {
            let b1 = elapsed(recs, app, ni, "1");
            let b2 = elapsed(recs, app, ni, "2");
            assert!(b2 < b1, "{app} on {ni:?}: B=2 {b2} vs B=1 {b1}");
        }
    }
    // em3d keeps improving to infinity; appbt does not.
    let em3d_2 = elapsed(recs, "em3d", NiKind::Cm5, "2");
    let em3d_inf = elapsed(recs, "em3d", NiKind::Cm5, "inf");
    assert!(
        em3d_2 > 1.12 * em3d_inf,
        "em3d 2->inf: {em3d_2} vs {em3d_inf}"
    );
    let appbt_2 = elapsed(recs, "appbt", NiKind::Cm5, "2");
    let appbt_inf = elapsed(recs, "appbt", NiKind::Cm5, "inf");
    assert!(appbt_2 < 1.12 * appbt_inf, "appbt gains little beyond 2");
    // Shrinking finite buffering never helps the communication-bound
    // apps (appbt is compute-bound enough that its AP3000 series is flat
    // to within scheduling noise, so it is not held to monotonicity).
    for app in MacroApp::ALL {
        if app == MacroApp::Appbt {
            continue;
        }
        for ni in [NiKind::Cm5, NiKind::Udma, NiKind::Ap3000] {
            let series: Vec<f64> = ["8", "2", "1"]
                .iter()
                .map(|b| elapsed(recs, app.name(), ni, b))
                .collect();
            for w in series.windows(2) {
                assert!(
                    w[1] >= w[0] * 0.999,
                    "{app} on {ni:?}: fewer buffers must not help ({series:?})"
                );
            }
        }
    }
    // And unbounded buffering is never materially worse than the best
    // finite level on any app/NI.
    for app in MacroApp::ALL {
        for ni in [NiKind::Cm5, NiKind::Udma, NiKind::Ap3000] {
            let inf = elapsed(recs, app.name(), ni, "inf");
            let best = ["8", "2", "1"]
                .iter()
                .map(|b| elapsed(recs, app.name(), ni, b))
                .fold(f64::INFINITY, f64::min);
            assert!(
                inf <= best * 1.05,
                "{app} on {ni:?}: inf {inf} vs best finite {best}"
            );
        }
    }
}

/// Figure 3b claims (EXPERIMENTS.md "Figure 3b"): CNI_32Qm best of the
/// coherent NIs, the unstructured exception vs AP3000, coherent buffer
/// insensitivity, and the §6.2.2 memory-traffic reduction.
#[test]
fn golden_fig3b_coherent_shapes() {
    let doc = committed();
    let recs = section(&doc, "fig3b");
    for app in MacroApp::ALL {
        let rows = fig3b_from_records(recs, app);
        let by = |k: NiKind| rows.iter().find(|r| r.point.ni == k).expect("row");
        let c32 = by(NiKind::Cni32Qm);
        // MemoryChannel is excluded: EXPERIMENTS.md records that our MC
        // model ties or slightly beats StarT-JR (and on appbt edges out
        // the CNI) — a documented deviation from the paper's Figure 3b.
        for other in [NiKind::StartJr, NiKind::Cni512Q] {
            assert!(
                c32.point.normalized <= by(other).point.normalized * 1.02,
                "{app}: CNI_32Qm must be best of the queue-based coherent NIs (vs {other:?})"
            );
        }
    }
    // CNI_32Qm beats AP3000@8 everywhere except unstructured.
    for app in MacroApp::ALL {
        let c32 = fig3b_from_records(recs, app)
            .iter()
            .find(|r| r.point.ni == NiKind::Cni32Qm)
            .expect("row")
            .point
            .normalized;
        if app == MacroApp::Unstructured {
            assert!(c32 > 1.0, "unstructured favours the AP3000-like NI");
        } else if app == MacroApp::Barnes {
            // EXPERIMENTS.md's table has barnes as a near-tie (1.02).
            assert!(c32 <= 1.02, "barnes should be a near-tie ({c32})");
        } else {
            assert!(c32 < 1.0, "{app} should favour CNI_32Qm ({c32})");
        }
    }
    // Coherent designs are largely insensitive to flow-control buffers
    // (the golden grid carries em3d B=8 extras for exactly this check).
    for ni in [NiKind::StartJr, NiKind::Cni32Qm] {
        let b1 = elapsed(recs, "em3d", ni, "1");
        let b8 = elapsed(recs, "em3d", ni, "8");
        let ratio = b1 / b8;
        assert!((0.95..=1.2).contains(&ratio), "{ni:?} em3d B1/B8 = {ratio}");
    }
    // §6.2.2: CNI_32Qm sharply cuts main-memory block reads vs StarT-JR.
    let em3d = fig3b_from_records(recs, MacroApp::Em3d);
    let reads = |k: NiKind| {
        em3d.iter()
            .find(|r| r.point.ni == k)
            .expect("row")
            .mem_reads
    };
    assert!(
        (reads(NiKind::Cni32Qm) as f64) < 0.6 * reads(NiKind::StartJr) as f64,
        "CNI_32Qm {} vs StarT-JR {} memory reads",
        reads(NiKind::Cni32Qm),
        reads(NiKind::StartJr)
    );
    for app in MacroApp::ALL {
        let rows = fig3b_from_records(recs, app);
        let r = |k: NiKind| {
            rows.iter()
                .find(|r| r.point.ni == k)
                .expect("row")
                .mem_reads
        };
        assert!(
            r(NiKind::Cni32Qm) <= r(NiKind::StartJr),
            "{app}: the CNI must never read more memory than StarT-JR"
        );
    }
}

/// Figure 4 claims (EXPERIMENTS.md "Figure 4"): the register-mapped NI's
/// advantage erodes as buffering shrinks, and deep buffering restores it.
#[test]
fn golden_fig4_register_mapped_shapes() {
    let doc = committed();
    let recs = section(&doc, "fig4");
    for app in MacroApp::ALL {
        let points = fig4_from_records(recs, app);
        // Normalised time declines (or holds) from B=2 up; the 1->2 step
        // may invert by a hair (EXPERIMENTS.md's table shows ties and
        // sub-1% inversions there, e.g. em3d 0.94 -> 0.98), but the
        // endpoints must still order: B=32 beats B=1.
        for w in points[1..].windows(2) {
            assert!(
                w[1].normalized <= w[0].normalized * 1.001,
                "{app}: fig4 series must decline beyond B=2 ({points:?})"
            );
        }
        assert!(
            points[3].normalized <= points[0].normalized * 1.001,
            "{app}: B=32 must beat B=1 ({points:?})"
        );
        // At 32 buffers the register-mapped NI wins on every app.
        assert!(
            points[3].normalized < 0.9,
            "{app}: deep buffering should favour NI_2w ({})",
            points[3].normalized
        );
    }
    // em3d's buffering sensitivity: B=1 is >20% slower than B=32.
    let em3d = fig4_from_records(recs, MacroApp::Em3d);
    assert!(
        em3d[0].elapsed_ns as f64 > 1.2 * em3d[3].elapsed_ns as f64,
        "em3d on NI_2w: B=1 vs B=32"
    );
}

/// Fault-study claims: the 0% run builds no fault plan, the 5% run loses
/// fragments and recovers every one by retransmission.
#[test]
fn golden_fault_recovery_shapes() {
    let doc = committed();
    let points = fault_study_from_records(
        section(&doc, "fault:em3d:cm5"),
        MacroApp::Em3d,
        NiKind::Cm5,
        &[0, 5],
    );
    let (clean, lossy) = (&points[0], &points[1]);
    assert!(clean.recovered_all && lossy.recovered_all, "{points:?}");
    assert_eq!(clean.offered, 0, "0% must not build a fault plan");
    assert_eq!(clean.app_messages, lossy.app_messages);
    assert!(lossy.dropped > 0, "5% loss must drop fragments");
    assert!(lossy.retransmits >= lossy.dropped, "{lossy:?}");
    // Retransmission reshuffles event timing, so 5% loss may move the
    // elapsed time a percent either way — but it must stay bounded.
    assert!(
        (0.9..=1.5).contains(&lossy.normalized),
        "5% loss moved elapsed time out of bounds: {}",
        lossy.normalized
    );
}

/// The connection-count sweep (EXPERIMENTS.md "connection sweep"): the
/// RDMA queue-pair NI falls off the QP-state-capacity cliff — p99 at
/// least doubles once the endpoint count exceeds its 64-entry cache —
/// while the connectionless URMA NI stays within 1.2× of its 4-endpoint
/// baseline across the whole sweep.
#[test]
fn golden_connsweep_cliff_and_flat_line() {
    let doc = committed();
    let rows = conn_sweep_from_records(section(&doc, "connsweep"));
    let base = &rows[0];
    assert_eq!(base.endpoints, 4, "the sweep starts at 4 endpoints");
    for r in &rows {
        if r.endpoints <= 64 {
            assert!(
                r.rdma_p99_ns < 1.2 * base.rdma_p99_ns,
                "rdma-qp must stay flat within its cache ({} endpoints: {} vs {})",
                r.endpoints,
                r.rdma_p99_ns,
                base.rdma_p99_ns
            );
        } else {
            assert!(
                r.rdma_p99_ns >= 2.0 * base.rdma_p99_ns,
                "rdma-qp p99 must at least double past capacity ({} endpoints: {} vs {})",
                r.endpoints,
                r.rdma_p99_ns,
                base.rdma_p99_ns
            );
        }
        assert!(
            r.urma_p99_ns <= 1.2 * base.urma_p99_ns,
            "urma must be endpoint-count immune ({} endpoints: {} vs {})",
            r.endpoints,
            r.urma_p99_ns,
            base.urma_p99_ns
        );
    }
}

/// The RDMA eager/rendezvous payload kink (EXPERIMENTS.md "modern
/// NIs"): the round trip grows with payload, and the step across the
/// 128 B crossover — where the rendezvous handshake joins the bill — is
/// larger than either same-protocol step beside it.
#[test]
fn golden_rdma_payload_kink() {
    let doc = committed();
    let points = rdma_kink_from_records(section(&doc, "rdma-kink"));
    for w in points.windows(2) {
        assert!(
            w[1].1 > w[0].1,
            "rtt must grow with payload: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
    // Payloads are equally spaced, so the slope step is visible directly.
    let step: Vec<f64> = points.windows(2).map(|w| w[1].1 - w[0].1).collect();
    assert!(
        step[1] > step[0] && step[1] > step[2],
        "the crossover step must dominate its neighbours: {step:?}"
    );
}

/// The strided-exchange claim (EXPERIMENTS.md "modern NIs"): one
/// gathered descriptor beats a fragment-per-element software loop on
/// the scatter-gather NI.
#[test]
fn golden_strided_gather_wins() {
    let doc = committed();
    let (gathered, per_elem) = strided_from_records(section(&doc, "strided"));
    assert!(
        gathered < per_elem,
        "the descriptor path must win: gathered {gathered} vs per-element {per_elem}"
    );
}

/// Cycle-occupancy breakdown claims, from the committed
/// `golden_breakdown.json`: the CM-5-style designs pay the most
/// processor overhead per accounted cycle, and the coherent CNI designs
/// shift that time off the processor and into NI buffer residency.
#[test]
fn golden_breakdown_occupancy_shapes() {
    let text = std::fs::read_to_string(breakdown_golden_path()).unwrap_or_else(|e| {
        panic!(
            "cannot read the committed breakdown golden ({e}); regenerate it with\n\
             `cargo run --release -p nisim-bench --bin breakdown -- --update-goldens`"
        )
    });
    let doc = parse_document(&text).expect("breakdown golden parses");
    let rows = breakdown_from_records(section(&doc, "breakdown"));
    assert_eq!(rows.len(), NiKind::TABLE2.len() + NiKind::MODERN.len());
    let by = |k: NiKind| rows.iter().find(|r| r.ni == k).expect("row");
    for r in &rows {
        assert!(r.total_ns > 0, "{:?} accounted nothing", r.ni);
        let sum = r.proc_share + r.bus_share + r.stall_share + r.ni_share + r.wire_share;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "{:?}: shares sum to {sum} (a component escaped the grouping)",
            r.ni
        );
    }
    // CM-5: every word crosses the processor, so it pays the largest
    // processor-overhead share (UDMA ties it below the DMA threshold).
    let cm5 = by(NiKind::Cm5);
    for r in &rows {
        assert!(
            cm5.proc_share >= r.proc_share * 0.999,
            "{:?} out-paid CM-5 on processor overhead ({} vs {})",
            r.ni,
            r.proc_share,
            cm5.proc_share
        );
    }
    // The coherent CNI designs move data with block transfers instead of
    // programmed I/O: processor share collapses (well under half of
    // CM-5's) while the cycles shift into NI buffer residency.
    for k in [NiKind::Cni512Q, NiKind::Cni32Qm] {
        let cni = by(k);
        assert!(
            cni.proc_share < 0.5 * cm5.proc_share,
            "{k:?} proc share {} vs cm5 {}",
            cni.proc_share,
            cm5.proc_share
        );
        assert!(
            cni.ni_share > cm5.ni_share,
            "{k:?} ni share {} vs cm5 {}",
            cni.ni_share,
            cm5.ni_share
        );
    }
}

/// The breakdown golden's own drift tripwire: a fresh metrics-on rerun
/// must reproduce the committed file byte for byte.
#[test]
fn breakdown_golden_matches_a_fresh_rerun_byte_for_byte() {
    let committed_text =
        std::fs::read_to_string(breakdown_golden_path()).expect("committed breakdown golden");
    let fresh = breakdown_document(default_jobs()).to_pretty();
    assert!(
        committed_text == fresh,
        "the breakdown golden drifted from the simulator's current behaviour;\n\
         if the change is intended, regenerate with\n\
         `cargo run --release -p nisim-bench --bin breakdown -- --update-goldens`"
    );
}

fn committed_loadlat() -> Vec<(String, Vec<RunRecord>)> {
    let path = loadlat_golden_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read the committed load/latency golden at {} ({e}); regenerate it with\n\
             `cargo run --release -p nisim-bench --bin loadlat -- --update-goldens`",
            path.display()
        )
    });
    parse_document(&text).expect("committed loadlat golden parses")
}

fn by_ni(curves: &[LoadCurve], ni: NiKind) -> &LoadCurve {
    curves
        .iter()
        .find(|c| c.ni == ni.key())
        .unwrap_or_else(|| panic!("no curve for {}", ni.key()))
}

/// Open-loop hockey sticks (EXPERIMENTS.md "load/latency"): under
/// uniform Poisson arrivals every design's p99 curve rises monotonically
/// (to measurement noise) with offered load, every run drains, and the
/// knee ordering separates the buffering schemes — the CM-5-style
/// return-to-sender designs saturate first, the coherent queue designs
/// later, CNI_32Qm last.
#[test]
fn golden_loadlat_hockey_sticks() {
    let doc = committed_loadlat();
    let curves = curves_from_records(section(&doc, "loadlat"), TrafficKind::PoissonUniform, "uni");
    for c in &curves {
        assert_eq!(c.p99_ns.len(), 7, "{}: incomplete ladder", c.ni);
        for (i, s) in c.status.iter().enumerate() {
            assert_eq!(s, "drained", "{} L{}: arrivals are finite", c.ni, i + 1);
            assert!(c.delivery[i] >= 1.0, "{} L{}: lost messages", c.ni, i + 1);
        }
        // The latency curve must never fall materially as load rises.
        for (i, w) in c.p99_ns.windows(2).enumerate() {
            assert!(
                w[1] >= w[0] * 0.90,
                "{}: p99 fell from L{} to L{} ({:?})",
                c.ni,
                i + 1,
                i + 2,
                c.p99_ns
            );
        }
        // And it must actually hockey-stick: the top of the ladder is
        // far above the flat region.
        let knee = c.knee_level();
        assert!(
            knee.is_some(),
            "{}: no knee — the ladder never saturated ({:?})",
            c.ni,
            c.p99_ns
        );
        assert!(
            c.p99_ns[6] > 4.0 * c.p99_ns[0],
            "{}: top-of-ladder p99 not clearly saturated ({:?})",
            c.ni,
            c.p99_ns
        );
    }
    // Knee ordering: the programmed-I/O designs leave the flat region
    // strictly before the coherent designs, and CNI_32Qm holds out the
    // longest of all.
    let knee = |ni: NiKind| by_ni(&curves, ni).knee_level().unwrap();
    for fifo in [NiKind::Cm5, NiKind::Udma] {
        for coherent in [
            NiKind::Ap3000,
            NiKind::MemoryChannel,
            NiKind::StartJr,
            NiKind::Cni512Q,
            NiKind::Cni32Qm,
        ] {
            assert!(
                knee(fifo) < knee(coherent),
                "{fifo:?} (L{}) must saturate before {coherent:?} (L{})",
                knee(fifo),
                knee(coherent)
            );
        }
    }
    for other in [
        NiKind::Cm5,
        NiKind::Udma,
        NiKind::Ap3000,
        NiKind::MemoryChannel,
        NiKind::StartJr,
        NiKind::Cni512Q,
    ] {
        assert!(
            knee(NiKind::Cni32Qm) > knee(other),
            "CNI_32Qm must saturate last (L{} vs {other:?} L{})",
            knee(NiKind::Cni32Qm),
            knee(other)
        );
    }
    // SLO verdicts at the mid-ladder level are stable: the CM-5-style
    // designs have already blown the tail budget, everyone else passes.
    for c in &curves {
        let expect = !matches!(c.ni.as_str(), "cm5" | "udma");
        assert_eq!(
            c.meets_slo(),
            expect,
            "{}: SLO verdict flipped (p99@L4 = {:?})",
            c.ni,
            c.p99_at(4)
        );
    }
}

/// The incast separation (EXPERIMENTS.md "incast"): under N→1 fan-in the
/// return-to-sender schemes latency-collapse levels before the coherent
/// queue designs — CM-5's L2 p99 inflates two orders of magnitude over
/// CNI_32Qm's, which is still flat there.
#[test]
fn golden_incast_collapse_separation() {
    let doc = committed_loadlat();
    let curves = curves_from_records(
        section(&doc, "incast"),
        TrafficKind::PoissonIncast,
        "incast",
    );
    let cm5 = by_ni(&curves, NiKind::Cm5);
    let c32 = by_ni(&curves, NiKind::Cni32Qm);
    // CM-5 has collapsed by L2 while CNI_32Qm is still flat: > 100×
    // apart on p99 (the committed run records ~125×).
    let (cm5_l2, c32_l2) = (cm5.p99_at(2).unwrap(), c32.p99_at(2).unwrap());
    assert!(
        cm5_l2 > 100.0 * c32_l2,
        "incast L2 separation collapsed: cm5 {cm5_l2} vs cni32qm {c32_l2}"
    );
    // Return-to-sender retry storms are the mechanism: CM-5 burns
    // thousands of retries at L2, the deep coherent queue none.
    let l2 = |ni: NiKind| {
        let key = "traffic:pois-incast:2";
        lookup(section(&doc, "incast"), key, ni.key(), "8", "")
            .unwrap_or_else(|| panic!("missing incast L2 record for {}", ni.key()))
    };
    assert!(
        l2(NiKind::Cm5).counter("retries") > 1_000,
        "CM-5 incast must be a retry storm"
    );
    assert_eq!(
        l2(NiKind::Cni32Qm).counter("retries"),
        0,
        "CNI_32Qm absorbs L2 incast without a single retry"
    );
    // Knee ordering: no coherent design saturates before CM-5, and
    // CNI_32Qm strictly outlasts it.
    let cm5_knee = cm5.knee_level().unwrap();
    for c in &curves {
        assert!(
            c.knee_level().unwrap() >= cm5_knee,
            "{}: saturated before the return-to-sender baseline",
            c.ni
        );
    }
    assert!(c32.knee_level().unwrap() > cm5_knee);
}

/// The multi-tenant mix (EXPERIMENTS.md "mixes"): both services get
/// recorded percentile blocks, and the light web tenant's tail rides the
/// shared saturation — at the heavy level its p99 degrades alongside the
/// bulk tenant's on every design.
#[test]
fn golden_tenant_mix_percentiles() {
    let doc = committed_loadlat();
    let recs = section(&doc, "mixes");
    for ni in nisim_bench::LOADLAT_NIS {
        for level in [3u32, 6] {
            let key = format!("traffic:mix:{level}");
            let r = lookup(recs, &key, ni.key(), "8", "")
                .unwrap_or_else(|| panic!("missing {key} for {}", ni.key()));
            assert_eq!(r.tenants.len(), 2, "{key}/{}", ni.key());
            for t in ["web", "bulk"] {
                let t = r.tenant(t).unwrap();
                assert_eq!(t.delivered, t.offered, "{key}/{}: lost", ni.key());
                assert!(t.p50_ns > 0.0 && t.p50_ns <= t.p99_ns && t.p99_ns <= t.p999_ns);
            }
        }
        let web = |level: u32| {
            lookup(recs, &format!("traffic:mix:{level}"), ni.key(), "8", "")
                .unwrap()
                .tenant("web")
                .unwrap()
                .p99_ns
        };
        assert!(
            web(6) > web(3),
            "{}: the web tenant's tail must feel the shared saturation",
            ni.key()
        );
    }
}

/// The loadlat golden's own drift tripwire: a fresh in-process rerun of
/// all three traffic sweeps must reproduce the committed file byte for
/// byte — at whatever intra-run worker count the CI matrix sets.
#[test]
fn loadlat_golden_matches_a_fresh_rerun_byte_for_byte() {
    use nisim_bench::record::{document, sweep_to_json};
    use nisim_bench::{incast_sweep, loadlat_sweep, mixes_sweep};
    let committed_text =
        std::fs::read_to_string(loadlat_golden_path()).expect("committed loadlat golden");
    let workers = std::env::var("NISIM_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok());
    let jobs = default_jobs();
    let fresh = document(vec![
        sweep_to_json("loadlat", &loadlat_sweep().with_workers(workers).run(jobs)),
        sweep_to_json("incast", &incast_sweep().with_workers(workers).run(jobs)),
        sweep_to_json("mixes", &mixes_sweep().with_workers(workers).run(jobs)),
    ])
    .to_pretty();
    assert!(
        committed_text == fresh,
        "the loadlat golden drifted from the simulator's current behaviour;\n\
         if the change is intended, regenerate with\n\
         `cargo run --release -p nisim-bench --bin loadlat -- --update-goldens`"
    );
}

/// The drift tripwire: a fresh in-process rerun of the whole golden
/// suite must reproduce the committed file byte for byte.
#[test]
fn golden_matches_a_fresh_rerun_byte_for_byte() {
    let committed_text = std::fs::read_to_string(golden_path()).expect("committed golden grid");
    // Honor the CI thread matrix: rerun the suite at the matrix's
    // intra-run worker count; the document must not depend on it.
    let workers = std::env::var("NISIM_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok());
    let fresh = golden_document(default_jobs(), workers).to_pretty();
    assert!(
        committed_text == fresh,
        "the golden grid drifted from the simulator's current behaviour;\n\
         if the change is intended, regenerate with\n\
         `cargo run --release -p nisim-bench --bin goldens -- --update-goldens`"
    );
}

/// Satellite determinism guarantee: a sweep's JSON is byte-identical
/// whether it ran on one worker or eight.
#[test]
fn sweep_json_is_byte_identical_across_job_counts() {
    use nisim_bench::record::{document, sweep_to_json};
    let sweep = fig3a_sweep(&[MacroApp::Em3d]);
    let serial = sweep.run(1);
    let parallel = sweep.run(8);
    let a = document(vec![sweep_to_json(&sweep.name, &serial)]).to_pretty();
    let b = document(vec![sweep_to_json(&sweep.name, &parallel)]).to_pretty();
    assert!(
        !a.is_empty() && a == b,
        "jobs=1 and jobs=8 must emit identical bytes"
    );
}
