//! Property tests for the footprint auditor and the epoch-race checker
//! against *real* parallel runs.
//!
//! The `nisim-analysis` crate proves the epoch-merge algorithm correct
//! on an abstract model (`epoch_check`) and verifies real runs' audit
//! logs after the fact (`audit::check_log`). These properties close the
//! loop between the two: LCG seam storms — schedules whose delays land
//! exactly at the window seams T, T+39, T+40 of the 40 ns lookahead —
//! must produce audit logs the checker passes at every worker count;
//! injected races must fail it; the merge-transition alphabet the real
//! runs exercise must be a subset of (and substantially overlap) the
//! alphabet the exhaustive abstract checker explored; and turning the
//! instrumentation on must not perturb the simulation at all.

use nisim_analysis::audit::check_log;
use nisim_analysis::epoch_check::EpochChecker;
use nisim_core::process::{Action, AppMessage, HandlerSpec, Process, SendSpec};
use nisim_core::{snapshot, Machine, MachineConfig, MachineSim, NiKind};
use nisim_engine::audit::{merge_transitions, FootprintKey, TR_SAME_TIME, TR_SEED};
use nisim_engine::json::{u64_from_hex, u64_hex};
use nisim_engine::{Dur, Json, SimStatus, Time};
use nisim_net::{BufferCount, NodeId};

/// Worker counts to exercise; `NISIM_TEST_WORKERS` pins one (the CI
/// matrix runs 1 and 4).
fn worker_counts() -> Vec<u32> {
    match std::env::var("NISIM_TEST_WORKERS") {
        Ok(v) => {
            let n: u32 = v
                .parse()
                .unwrap_or_else(|_| panic!("NISIM_TEST_WORKERS must be a number, got {v:?}"));
            vec![n.max(1)]
        }
        Err(_) => vec![1, 2, 4, 8],
    }
}

/// Deterministic 64-bit LCG (MMIX constants).
#[derive(Clone, Copy)]
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// An LCG-driven seam storm: every compute delay is one of {0, 39, 40},
/// so bursts pile up at the epoch seams where the merge has the most to
/// get wrong. Fully snapshotable.
struct SeamStorm {
    id: u32,
    nodes: u32,
    rng: Lcg,
    sends_left: u32,
    replies_left: u32,
    compute_next: bool,
    done: bool,
}

impl SeamStorm {
    fn new(id: u32, nodes: u32, seed: u64) -> SeamStorm {
        SeamStorm {
            id,
            nodes,
            rng: Lcg(seed ^ (u64::from(id) << 32) | 1),
            sends_left: 24,
            replies_left: 12,
            compute_next: true,
            done: false,
        }
    }

    fn peer(&mut self) -> NodeId {
        let other = self.rng.pick(u64::from(self.nodes) - 1) as u32;
        NodeId(if other >= self.id { other + 1 } else { other })
    }
}

impl Process for SeamStorm {
    fn next_action(&mut self, _now: Time) -> Action {
        if self.sends_left == 0 {
            self.done = true;
            return Action::Done;
        }
        if self.compute_next {
            self.compute_next = false;
            let d = [0, 39, 40][self.rng.pick(3) as usize];
            if d > 0 {
                return Action::Compute(Dur::ns(d));
            }
        }
        self.compute_next = true;
        self.sends_left -= 1;
        let dst = self.peer();
        let payload = [16, 64, 248, 1024][self.rng.pick(4) as usize];
        Action::Send(SendSpec::new(dst, payload, 5))
    }

    fn on_message(&mut self, msg: &AppMessage, _now: Time) -> HandlerSpec {
        let compute = Dur::ns([0, 39, 40][self.rng.pick(3) as usize]);
        if self.replies_left > 0 && self.rng.pick(3) == 0 {
            self.replies_left -= 1;
            HandlerSpec::reply(compute, SendSpec::new(msg.src, 32, 6))
        } else {
            HandlerSpec::compute(compute)
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn snapshot(&self) -> Option<Json> {
        Some(
            Json::obj()
                .set("rng", u64_hex(self.rng.0))
                .set("sends_left", u64::from(self.sends_left))
                .set("replies_left", u64::from(self.replies_left))
                .set("compute_next", self.compute_next)
                .set("done", self.done),
        )
    }

    fn restore(&mut self, state: &Json) -> bool {
        let (Some(rng), Some(sends), Some(replies)) = (
            state
                .get("rng")
                .and_then(Json::as_str)
                .and_then(u64_from_hex),
            state.get("sends_left").and_then(Json::as_u64),
            state.get("replies_left").and_then(Json::as_u64),
        ) else {
            return false;
        };
        let (Some(Json::Bool(compute_next)), Some(Json::Bool(done))) =
            (state.get("compute_next"), state.get("done"))
        else {
            return false;
        };
        self.rng = Lcg(rng);
        self.sends_left = sends as u32;
        self.replies_left = replies as u32;
        self.compute_next = *compute_next;
        self.done = *done;
        true
    }
}

fn storm_cfg(nodes: u32, workers: u32) -> MachineConfig {
    MachineConfig::with_ni(NiKind::Cm5)
        .nodes(nodes)
        .flow_buffers(BufferCount::Finite(4))
        .workers(workers)
}

fn storm_factory(nodes: u32, seed: u64) -> impl FnMut(NodeId) -> Box<dyn Process> {
    move |id| Box::new(SeamStorm::new(id.0, nodes, seed)) as Box<dyn Process>
}

/// Seam storms — same-instant bursts at T, T+39 and T+40 across six
/// nodes — produce audit logs the checker passes at every worker count,
/// and the logs are not vacuous: parallel epochs actually formed.
#[test]
fn seam_storms_audit_clean_at_every_worker_count() {
    for seed in 0..4u64 {
        for workers in worker_counts() {
            let (report, log) = Machine::run_audited(storm_cfg(6, workers), storm_factory(6, seed));
            assert_eq!(
                report.status,
                SimStatus::Drained,
                "seed {seed} workers {workers}"
            );
            assert!(
                !log.epochs.is_empty(),
                "seed {seed} workers {workers}: no parallel epochs audited"
            );
            let violations = check_log("storm", &log);
            assert!(
                violations.is_empty(),
                "seed {seed} workers {workers}: {violations:?}"
            );
        }
    }
}

/// The auditor is not a rubber stamp: races injected into a real run's
/// log — a cross-lane write to the same transfer, an in-window schedule
/// aimed at another node — are reported.
#[test]
fn injected_races_fail_a_real_runs_log() {
    let (_, log) = Machine::run_audited(storm_cfg(6, 4), storm_factory(6, 1));
    let ep = log
        .epochs
        .iter()
        .position(|e| e.lanes.len() >= 2)
        .expect("a multi-lane epoch");

    // A write to a transfer another lane already wrote.
    let mut raced = log.clone();
    let key = FootprintKey::transfer(0xdead_beef);
    raced.epochs[ep].lanes[0].writes.push(key);
    raced.epochs[ep].lanes[0].seal();
    raced.epochs[ep].lanes[1].writes.push(key);
    raced.epochs[ep].lanes[1].seal();
    assert!(
        check_log("raced", &raced)
            .iter()
            .any(|v| v.contains("conflict")),
        "injected cross-lane write went undetected"
    );

    // An in-window schedule targeting a remote node (lookahead breach).
    let mut breached = log.clone();
    let lane_node = breached.epochs[ep].lanes[0].node;
    let inside = breached.epochs[ep].start_ns;
    breached.epochs[ep].lanes[0]
        .scheds
        .push((inside, lane_node + 1));
    assert!(
        check_log("breached", &breached)
            .iter()
            .any(|v| v.contains("inside the window")),
        "injected lookahead breach went undetected"
    );
}

/// Agreement between the abstract model and the engine: the
/// merge-transition alphabet real seam storms exercise is a subset of
/// the alphabet the exhaustive abstract checker explored, and the
/// overlap is substantial — same-instant ties and seed steps both occur
/// for real, so the abstract model's hard cases are not hypothetical.
/// (Two-node storms stay under the sparse-window guard and run
/// serially, so the alphabet is collected from six-node runs.)
#[test]
fn real_merge_transitions_agree_with_the_abstract_model() {
    let abstract_alphabet = EpochChecker::new().check().transitions;
    let mut real = std::collections::BTreeSet::new();
    for seed in 0..4u64 {
        let (_, log) = Machine::run_audited(storm_cfg(6, 4), storm_factory(6, seed));
        for ep in &log.epochs {
            real.extend(merge_transitions(&ep.merge));
        }
    }
    assert!(
        real.is_subset(&abstract_alphabet),
        "real runs exercised merge transitions the abstract checker never explored: \
         {real:?} vs {abstract_alphabet:?}"
    );
    assert!(
        real.len() >= 3,
        "agreement test is vacuous: real runs exercised only {real:?}"
    );
    assert!(
        real.iter().any(|t| t & TR_SAME_TIME != 0),
        "no same-instant merge tie occurred in any real epoch"
    );
    assert!(
        real.iter().any(|t| t & TR_SEED != 0),
        "no seed step followed another step in any real epoch"
    );
}

/// The instrumentation is observational: the same config with auditing
/// on and off produces byte-identical reports, and the audited event
/// totals account for every event the run fired.
#[test]
fn audit_instrumentation_does_not_perturb_the_run() {
    for workers in worker_counts() {
        let plain = Machine::run(storm_cfg(6, workers), storm_factory(6, 2));
        let (audited, log) = Machine::run_audited(storm_cfg(6, workers), storm_factory(6, 2));
        assert_eq!(
            format!("{plain:?}"),
            format!("{audited:?}"),
            "workers {workers}: auditing perturbed the report"
        );
        let merged: u64 = log.epochs.iter().map(|e| e.merge.len() as u64).sum();
        assert_eq!(
            log.parallel_events, merged,
            "workers {workers}: lane totals disagree with merge steps"
        );
    }
}

/// A checkpoint of an audited run carries its audit log: the restored
/// machine's final log extends the pre-cut log (same epochs, then new
/// ones) and still verifies clean.
#[test]
fn audited_snapshot_preserves_pre_cut_epochs() {
    let nodes = 8;
    // Find a seed whose storm forms at least two parallel epochs, and a
    // cut that provably lands after the first (the early windows of a
    // run are often too sparse to parallelize): mid-window of the
    // median epoch, off any 40 ns multiple.
    let (seed, cut_ns) = (0..16u64)
        .find_map(|seed| {
            let (_, probe) = Machine::run_audited(storm_cfg(nodes, 4), storm_factory(nodes, seed));
            (probe.epochs.len() >= 2)
                .then(|| (seed, probe.epochs[probe.epochs.len() / 2].start_ns + 13))
        })
        .expect("no seed in 0..16 formed two parallel epochs");

    let cfg = storm_cfg(nodes, 4).audit(true);
    let mut m = Machine::new(cfg, storm_factory(nodes, seed));
    let mut sim = MachineSim::new();
    m.start(&mut sim);
    let status = m.run_slice(&mut sim, Time::from_ns(cut_ns), 500_000_000);
    assert_eq!(status, SimStatus::HorizonReached);
    let snap = snapshot::save(&m, &mut sim).expect("snapshot");
    let pre_cut = m.take_audit().expect("audit log");
    assert!(!pre_cut.epochs.is_empty(), "no epochs before the cut");

    let (mut r, mut rsim) = snapshot::restore(
        storm_cfg(nodes, 2).audit(true),
        storm_factory(nodes, seed),
        &snap,
    )
    .expect("restore");
    let status = r.run_slice(&mut rsim, Time::from_ns(10_000_000_000), 500_000_000);
    assert_eq!(status, SimStatus::Drained);
    let full = r.take_audit().expect("audit log after restore");
    // The resumed run re-opens windows at different seams, so it may
    // legitimately parallelize no further window; it must still have
    // made progress on top of the restored log.
    assert!(
        full.serial_events + full.parallel_events > pre_cut.serial_events + pre_cut.parallel_events,
        "resumed run recorded no events past the cut"
    );
    assert!(full.epochs.len() >= pre_cut.epochs.len());
    assert_eq!(
        &full.epochs[..pre_cut.epochs.len()],
        &pre_cut.epochs[..],
        "restore did not preserve the pre-cut epochs"
    );
    assert!(check_log("resumed", &full).is_empty());
}
