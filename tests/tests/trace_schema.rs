//! Schema validation for the Chrome-trace JSONL export: every line of a
//! traced run must parse through the engine's own JSON layer as one
//! async-span event with the fields Chrome's trace viewer (and any
//! JSONL consumer) relies on — non-negative monotonic timestamps,
//! matched "b"/"e" pairs per (name, id), and track names drawn from the
//! observability layer's component vocabulary.

use std::collections::BTreeMap;

use nisim_core::{MachineConfig, NiKind};
use nisim_engine::json::{self, Json};
use nisim_engine::metrics::{Component, MetricsConfig};
use nisim_workloads::apps::{run_app, MacroApp};

#[test]
fn traced_run_exports_well_formed_chrome_jsonl() {
    let app = MacroApp::Em3d;
    let cfg = MachineConfig::with_ni(NiKind::Cm5).metrics(MetricsConfig::traced());
    let report = run_app(app, &cfg, &app.default_params());
    let sink = report.trace.as_ref().expect("traced run returns a sink");
    assert!(!sink.is_empty(), "traced run recorded no spans");

    let text = sink.to_chrome_jsonl();
    let mut last_ts = 0u64;
    let mut open: BTreeMap<(String, u64), u64> = BTreeMap::new();
    let mut lines = 0u64;
    for (n, line) in text.lines().enumerate() {
        let ev = json::parse(line).unwrap_or_else(|e| panic!("line {n}: {e}: {line}"));
        lines += 1;

        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("line {n}: no name"));
        assert!(
            Component::from_key(name).is_some(),
            "line {n}: track {name:?} is not a Component key"
        );
        assert_eq!(
            ev.get("cat").and_then(Json::as_str),
            Some("nisim"),
            "line {n}"
        );

        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("line {n}: no ph"));
        let ts = ev
            .get("ts")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("line {n}: ts must be a non-negative integer"));
        assert!(
            ts >= last_ts,
            "line {n}: ts went backwards ({last_ts} -> {ts})"
        );
        last_ts = ts;

        let id = ev
            .get("id")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("line {n}: no id"));
        assert!(
            ev.get("pid").and_then(Json::as_u64).is_some(),
            "line {n}: no pid"
        );
        let tid = ev
            .get("tid")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("line {n}: no tid"));
        assert!(
            (tid as usize) < Component::ALL.len(),
            "line {n}: tid {tid} is not a component track"
        );

        let key = (name.to_string(), id);
        match ph {
            "b" => {
                assert!(
                    open.insert(key, ts).is_none(),
                    "line {n}: duplicate begin for ({name}, {id})"
                );
            }
            "e" => {
                let begin = open
                    .remove(&key)
                    .unwrap_or_else(|| panic!("line {n}: end without begin for ({name}, {id})"));
                assert!(
                    begin <= ts,
                    "line {n}: span ({name}, {id}) ends before it begins"
                );
            }
            other => panic!("line {n}: unexpected ph {other:?}"),
        }
    }
    assert!(open.is_empty(), "unmatched begin events: {open:?}");
    assert_eq!(
        lines,
        2 * sink.len() as u64,
        "every span exports exactly one begin and one end"
    );
}

/// The export is deterministic: the same config renders the same bytes.
#[test]
fn trace_export_is_deterministic() {
    let app = MacroApp::Em3d;
    let cfg = MachineConfig::with_ni(NiKind::Ap3000).metrics(MetricsConfig::traced());
    let a = run_app(app, &cfg, &app.default_params());
    let b = run_app(app, &cfg, &app.default_params());
    let (ta, tb) = (a.trace.expect("trace"), b.trace.expect("trace"));
    assert_eq!(ta.to_chrome_jsonl(), tb.to_chrome_jsonl());
}
