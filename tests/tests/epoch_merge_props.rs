//! Property tests for the epoch driver's deterministic merge.
//!
//! The conservative driver batches the window `[T, T + L)` (L = the
//! 40 ns wire latency) per node and replays the lanes back into the
//! serial order. Its hard cases are events *at* the window's seams, so
//! these properties drive LCG-generated send/compute schedules whose
//! delays are drawn from exactly those instants — 0 (same-instant
//! bursts), 39/L−1 (last instant inside a window), 40/L (first instant
//! of the next window), 41 — across several nodes, and assert that the
//! parallel runs are byte-identical to serial: same reports, same
//! message-lifecycle traces, same violation logs.
//!
//! A second family checks checkpointing against the epoch structure:
//! horizon cuts land mid-window (the driver clamps its epoch to the
//! horizon, so a resumed run re-opens windows at different seams), and
//! a snapshot taken from a parallel run must resume byte-identically
//! under any other worker count — including serial.

use nisim_core::process::{Action, AppMessage, HandlerSpec, Process, SendSpec};
use nisim_core::{snapshot, Machine, MachineConfig, MachineSim, NiKind};
use nisim_engine::json::{u64_from_hex, u64_hex};
use nisim_engine::{Dur, Json, SimStatus, Time};
use nisim_net::{BufferCount, NodeId};

/// Deterministic 64-bit LCG (MMIX constants); the whole schedule is a
/// pure function of the seed.
#[derive(Clone, Copy)]
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Compute delays biased to the epoch seams of the 40 ns lookahead.
/// `boundary_bias` makes every delay one of {0, 39, 40} — events landing
/// exactly at T, T+L−1 and T+L of some window.
fn seam_delay(rng: &mut Lcg, boundary_bias: bool) -> u64 {
    if boundary_bias {
        [0, 39, 40][rng.pick(3) as usize]
    } else {
        [0, 0, 1, 39, 39, 40, 40, 41, 80, 200][rng.pick(10) as usize]
    }
}

/// An LCG-driven storm: each node alternates seam-biased computes with
/// sends to LCG-chosen peers, and handlers occasionally reply, so
/// cross-node fragments keep landing at window seams. Fully
/// snapshotable — the LCG state and counters are the whole state.
struct SeamStorm {
    id: u32,
    nodes: u32,
    rng: Lcg,
    sends_left: u32,
    replies_left: u32,
    boundary_bias: bool,
    compute_next: bool,
    done: bool,
}

impl SeamStorm {
    fn new(id: u32, nodes: u32, seed: u64, boundary_bias: bool) -> SeamStorm {
        SeamStorm {
            id,
            nodes,
            rng: Lcg(seed ^ (u64::from(id) << 32) | 1),
            sends_left: 24,
            replies_left: 12,
            boundary_bias,
            compute_next: true,
            done: false,
        }
    }

    fn peer(&mut self) -> NodeId {
        let other = self.rng.pick(u64::from(self.nodes) - 1) as u32;
        NodeId(if other >= self.id { other + 1 } else { other })
    }
}

impl Process for SeamStorm {
    fn next_action(&mut self, _now: Time) -> Action {
        if self.sends_left == 0 {
            self.done = true;
            return Action::Done;
        }
        if self.compute_next {
            self.compute_next = false;
            let d = seam_delay(&mut self.rng, self.boundary_bias);
            if d > 0 {
                return Action::Compute(Dur::ns(d));
            }
            // Fall through: a zero delay means the send happens at the
            // same instant the processor freed up.
        }
        self.compute_next = true;
        self.sends_left -= 1;
        let dst = self.peer();
        let payload = [16, 64, 248, 1024][self.rng.pick(4) as usize];
        Action::Send(SendSpec::new(dst, payload, 5))
    }

    fn on_message(&mut self, msg: &AppMessage, _now: Time) -> HandlerSpec {
        let compute = Dur::ns(seam_delay(&mut self.rng, self.boundary_bias));
        if self.replies_left > 0 && self.rng.pick(3) == 0 {
            self.replies_left -= 1;
            HandlerSpec::reply(compute, SendSpec::new(msg.src, 32, 6))
        } else {
            HandlerSpec::compute(compute)
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn snapshot(&self) -> Option<Json> {
        Some(
            Json::obj()
                .set("rng", u64_hex(self.rng.0))
                .set("sends_left", u64::from(self.sends_left))
                .set("replies_left", u64::from(self.replies_left))
                .set("compute_next", self.compute_next)
                .set("done", self.done),
        )
    }

    fn restore(&mut self, state: &Json) -> bool {
        let (Some(rng), Some(sends), Some(replies)) = (
            state
                .get("rng")
                .and_then(Json::as_str)
                .and_then(u64_from_hex),
            state.get("sends_left").and_then(Json::as_u64),
            state.get("replies_left").and_then(Json::as_u64),
        ) else {
            return false;
        };
        let (Some(Json::Bool(compute_next)), Some(Json::Bool(done))) =
            (state.get("compute_next"), state.get("done"))
        else {
            return false;
        };
        self.rng = Lcg(rng);
        self.sends_left = sends as u32;
        self.replies_left = replies as u32;
        self.compute_next = *compute_next;
        self.done = *done;
        true
    }
}

fn storm_cfg(nodes: u32, ni: NiKind) -> MachineConfig {
    MachineConfig::with_ni(ni)
        .nodes(nodes)
        .flow_buffers(BufferCount::Finite(4))
}

fn storm_factory(
    nodes: u32,
    seed: u64,
    boundary_bias: bool,
) -> impl FnMut(NodeId) -> Box<dyn Process> {
    move |id| Box::new(SeamStorm::new(id.0, nodes, seed, boundary_bias)) as Box<dyn Process>
}

/// LCG schedules whose sends land at T, T+39 and T+40 of the epoch
/// windows preserve the global event order: traced parallel runs equal
/// the serial one byte for byte.
#[test]
fn seam_schedules_preserve_global_event_order() {
    for seed in 0..6u64 {
        let nodes = 4 + (seed % 3) as u32 * 2; // 4, 6, 8
        let serial = Machine::run_traced(
            storm_cfg(nodes, NiKind::Cm5),
            storm_factory(nodes, seed, false),
        );
        assert!(serial.0.all_quiescent, "seed {seed}: {:?}", serial.0.stall);
        for workers in [2, 4] {
            let mut cfg = storm_cfg(nodes, NiKind::Cm5);
            cfg.workers = workers;
            let parallel = Machine::run_traced(cfg, storm_factory(nodes, seed, false));
            assert_eq!(
                format!("{:?}", serial.0),
                format!("{:?}", parallel.0),
                "seed {seed} workers {workers}: report diverged"
            );
            assert_eq!(
                serial.1, parallel.1,
                "seed {seed} workers {workers}: trace diverged"
            );
        }
    }
}

/// Pure boundary schedules — every delay is exactly 0, 39 or 40 ns, so
/// same-instant bursts pile up at window seams on several nodes at
/// once. Same-instant FIFO must survive the lane merge.
#[test]
fn same_instant_bursts_at_window_seams_preserve_fifo() {
    for seed in 0..6u64 {
        let nodes = 6;
        let serial = Machine::run_traced(
            storm_cfg(nodes, NiKind::Ap3000),
            storm_factory(nodes, seed, true),
        );
        for workers in [2, 8] {
            let mut cfg = storm_cfg(nodes, NiKind::Ap3000);
            cfg.workers = workers;
            let parallel = Machine::run_traced(cfg, storm_factory(nodes, seed, true));
            assert_eq!(
                format!("{:?}", serial.0),
                format!("{:?}", parallel.0),
                "seed {seed} workers {workers}: report diverged"
            );
            assert_eq!(
                serial.1, parallel.1,
                "seed {seed} workers {workers}: trace diverged"
            );
        }
    }
}

fn run_to_end(m: &mut Machine, sim: &mut MachineSim) -> String {
    let status = m.run_slice(sim, Time::from_ns(10_000_000_000), 500_000_000);
    assert_eq!(status, SimStatus::Drained);
    format!("{:?}", m.report(sim, status))
}

/// A checkpoint taken at a horizon cut of a *parallel* run — i.e. mid
/// logical epoch, since the driver clamps its window to the horizon —
/// resumes byte-identically under every other worker count.
#[test]
fn mid_epoch_checkpoint_resumes_identically_under_any_worker_count() {
    for seed in [1u64, 9] {
        let nodes = 4;
        // Golden: uninterrupted serial run.
        let mut golden = Machine::new(
            storm_cfg(nodes, NiKind::Cm5),
            storm_factory(nodes, seed, false),
        );
        let mut gsim = MachineSim::new();
        golden.start(&mut gsim);
        let golden_report = run_to_end(&mut golden, &mut gsim);

        // Cut points chosen to land inside busy stretches, not on any
        // 40 ns multiple.
        for cut_ns in [777u64, 3_333, 7_919] {
            // Run parallel up to the cut, snapshot there.
            let mut cfg = storm_cfg(nodes, NiKind::Cm5);
            cfg.workers = 4;
            let mut m = Machine::new(cfg, storm_factory(nodes, seed, false));
            let mut sim = MachineSim::new();
            m.start(&mut sim);
            let status = m.run_slice(&mut sim, Time::from_ns(cut_ns), 500_000_000);
            if status != SimStatus::HorizonReached {
                continue; // run drained before the cut; nothing to resume
            }
            let snap = snapshot::save(&m, &mut sim).expect("snapshot");

            // Resume the snapshot at several worker counts, serial
            // included; all must reproduce the uninterrupted report.
            for workers in [0u32, 1, 2, 8] {
                let mut cfg = storm_cfg(nodes, NiKind::Cm5);
                cfg.workers = workers;
                let (mut r, mut rsim) =
                    snapshot::restore(cfg, storm_factory(nodes, seed, false), &snap)
                        .expect("restore");
                let resumed = run_to_end(&mut r, &mut rsim);
                assert_eq!(
                    golden_report, resumed,
                    "seed {seed} cut {cut_ns} workers {workers}: resumed run diverged"
                );
            }

            // And the paused parallel original continues identically.
            let continued = run_to_end(&mut m, &mut sim);
            assert_eq!(
                golden_report, continued,
                "seed {seed} cut {cut_ns}: continued parallel run diverged"
            );
        }
    }
}
