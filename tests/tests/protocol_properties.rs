//! Randomised property tests of the simulator's end-to-end protocol
//! invariants: message conservation, quiescence, accounting completeness
//! and determinism under arbitrary traffic patterns. Plans are generated
//! with the engine's seedable PRNG for exact reproducibility.

use nisim_core::process::{Action, AppMessage, HandlerSpec, Process, SendSpec};
use nisim_core::{Machine, MachineConfig, MachineReport, NiKind};
use nisim_engine::{Dur, SimStatus, SplitMix64, Time};
use nisim_net::{BufferCount, FaultConfig, NodeId, ReliabilityConfig};

/// A scripted process: performs a fixed list of sends (with small compute
/// gaps) and counts what it receives.
struct Scripted {
    plan: Vec<SendSpec>,
    next: usize,
    received: u64,
}

impl Process for Scripted {
    fn next_action(&mut self, _now: Time) -> Action {
        if self.next >= self.plan.len() {
            return Action::Done;
        }
        let spec = self.plan[self.next];
        self.next += 1;
        Action::Send(spec)
    }

    fn on_message(&mut self, _msg: &AppMessage, _now: Time) -> HandlerSpec {
        self.received += 1;
        HandlerSpec::compute(Dur::ns(30))
    }

    fn is_done(&self) -> bool {
        self.next >= self.plan.len()
    }
}

/// One random traffic plan: per node, a list of (dst offset, payload).
#[derive(Clone, Debug)]
struct Plan {
    nodes: u32,
    sends: Vec<Vec<(u32, u64)>>,
}

fn random_plan(rng: &mut SplitMix64) -> Plan {
    let nodes = 2 + rng.gen_range(4) as u32;
    let sends = (0..nodes)
        .map(|_| {
            let n = rng.gen_range(12) as usize;
            (0..n)
                .map(|_| {
                    (
                        1 + rng.gen_range((nodes - 1) as u64) as u32,
                        rng.gen_range(600),
                    )
                })
                .collect()
        })
        .collect();
    Plan { nodes, sends }
}

const NI_KINDS: [NiKind; 8] = [
    NiKind::Cm5,
    NiKind::Cm5SingleCycle,
    NiKind::Udma,
    NiKind::Ap3000,
    NiKind::StartJr,
    NiKind::MemoryChannel,
    NiKind::Cni512Q,
    NiKind::Cni32Qm,
];

const BUFFERINGS: [BufferCount; 4] = [
    BufferCount::Finite(1),
    BufferCount::Finite(2),
    BufferCount::Finite(8),
    BufferCount::Infinite,
];

fn random_ni(rng: &mut SplitMix64) -> NiKind {
    NI_KINDS[rng.gen_range(NI_KINDS.len() as u64) as usize]
}

fn random_buffers(rng: &mut SplitMix64) -> BufferCount {
    BUFFERINGS[rng.gen_range(BUFFERINGS.len() as u64) as usize]
}

fn run_plan(plan: &Plan, ni: NiKind, buffers: BufferCount) -> MachineReport {
    let cfg = MachineConfig::with_ni(ni)
        .nodes(plan.nodes)
        .flow_buffers(buffers);
    let sends = plan.sends.clone();
    let nodes = plan.nodes;
    Machine::run(cfg, move |id| -> Box<dyn Process> {
        let mine = sends[id.index()]
            .iter()
            .map(|&(off, payload)| SendSpec::new(NodeId((id.0 + off) % nodes), payload, 0))
            .collect();
        Box::new(Scripted {
            plan: mine,
            next: 0,
            received: 0,
        })
    })
}

/// Every sent message is delivered exactly once, on every NI design,
/// at every buffering level, and the machine reaches quiescence.
#[test]
fn messages_are_conserved() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0xC0A5E0 + case);
        let plan = random_plan(&mut rng);
        let ni = random_ni(&mut rng);
        let b = random_buffers(&mut rng);
        let total_sends: u64 = plan.sends.iter().map(|s| s.len() as u64).sum();
        let report = run_plan(&plan, ni, b);
        assert_eq!(report.status, SimStatus::Drained, "case {case} on {ni}");
        assert!(report.all_quiescent, "not quiescent on {ni} (case {case})");
        assert_eq!(report.app_messages, total_sends, "case {case} on {ni}");
    }
}

/// Per-node accounting is complete: the category durations sum to the
/// span the ledger covers (no holes, no double counting).
#[test]
fn accounting_is_complete() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0xACC0 + case);
        let plan = random_plan(&mut rng);
        let ni = random_ni(&mut rng);
        let report = run_plan(&plan, ni, BufferCount::Finite(2));
        for ledger in &report.ledgers {
            assert_eq!(
                ledger.total(),
                ledger.stamp() - Time::ZERO,
                "case {case} on {ni}"
            );
        }
    }
}

/// The simulation is deterministic: identical inputs give identical
/// timing and traffic, bit for bit.
#[test]
fn runs_are_deterministic() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0xDE7E12 + case);
        let plan = random_plan(&mut rng);
        let ni = random_ni(&mut rng);
        let b = random_buffers(&mut rng);
        let a = run_plan(&plan, ni, b);
        let c = run_plan(&plan, ni, b);
        assert_eq!(a.elapsed, c.elapsed, "case {case} on {ni}");
        assert_eq!(a.bus_transactions, c.bus_transactions, "case {case}");
        assert_eq!(a.retries, c.retries, "case {case}");
        assert_eq!(a.mem_reads, c.mem_reads, "case {case}");
    }
}

/// Infinite buffering never stalls, rejects, or retries.
#[test]
fn infinite_buffers_are_frictionless() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0x1F1F + case);
        let plan = random_plan(&mut rng);
        let ni = random_ni(&mut rng);
        let report = run_plan(&plan, ni, BufferCount::Infinite);
        assert_eq!(report.send_stalls, 0, "case {case} on {ni}");
        assert_eq!(report.recv_rejects, 0, "case {case} on {ni}");
        assert_eq!(report.retries, 0, "case {case} on {ni}");
    }
}

/// A random drop/duplicate/corrupt/jitter schedule for the fault layer.
fn random_fault(rng: &mut SplitMix64) -> FaultConfig {
    FaultConfig {
        drop_p: 0.3 * rng.gen_f64(),
        dup_p: 0.3 * rng.gen_f64(),
        corrupt_p: 0.2 * rng.gen_f64(),
        jitter_max: Dur::ns(rng.gen_range(80)),
        seed: rng.next_u64(),
        ..FaultConfig::default()
    }
}

fn run_plan_faulty(
    plan: &Plan,
    ni: NiKind,
    buffers: BufferCount,
    fault: FaultConfig,
    rel: ReliabilityConfig,
) -> MachineReport {
    let cfg = MachineConfig::with_ni(ni)
        .nodes(plan.nodes)
        .flow_buffers(buffers)
        .fault(fault)
        .reliability(rel);
    let sends = plan.sends.clone();
    let nodes = plan.nodes;
    Machine::run(cfg, move |id| -> Box<dyn Process> {
        let mine = sends[id.index()]
            .iter()
            .map(|&(off, payload)| SendSpec::new(NodeId((id.0 + off) % nodes), payload, 0))
            .collect();
        Box::new(Scripted {
            plan: mine,
            next: 0,
            received: 0,
        })
    })
}

/// Exactly-once delivery under ANY drop/duplicate/corrupt/jitter fault
/// schedule: with the reliability layer on, every sent message is
/// delivered exactly once (retransmission recovers drops, receiver
/// dedup suppresses duplicates), the run drains to quiescence, and the
/// typed error channel stays clean.
#[test]
fn exactly_once_under_random_fault_schedules() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0xFA5731 + case);
        let plan = random_plan(&mut rng);
        let ni = random_ni(&mut rng);
        let b = random_buffers(&mut rng);
        let fault = random_fault(&mut rng);
        let total_sends: u64 = plan.sends.iter().map(|s| s.len() as u64).sum();
        let report = run_plan_faulty(&plan, ni, b, fault.clone(), ReliabilityConfig::on());
        assert_eq!(
            report.status,
            SimStatus::Drained,
            "case {case} on {ni} with {fault:?}"
        );
        assert!(report.all_quiescent, "case {case} on {ni} with {fault:?}");
        assert_eq!(
            report.app_messages, total_sends,
            "case {case} on {ni} with {fault:?}: lost or duplicated messages"
        );
        assert!(
            report.violations.is_empty(),
            "case {case} on {ni}: {:?}",
            report.violations
        );
    }
}

/// A fixed fault seed reproduces the exact same faulty run, bit for bit.
#[test]
fn faulty_runs_are_deterministic() {
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0xFADE7E + case);
        let plan = random_plan(&mut rng);
        let ni = random_ni(&mut rng);
        let fault = random_fault(&mut rng);
        let run = || {
            run_plan_faulty(
                &plan,
                ni,
                BufferCount::Finite(2),
                fault.clone(),
                ReliabilityConfig::on(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.elapsed, b.elapsed, "case {case} on {ni}");
        assert_eq!(a.fault_stats, b.fault_stats, "case {case} on {ni}");
        assert_eq!(a.rel_stats, b.rel_stats, "case {case} on {ni}");
        assert_eq!(a.app_messages, b.app_messages, "case {case} on {ni}");
    }
}

/// The watchdog fires on a wedged endpoint instead of hanging or lying:
/// when every fragment vanishes and the retry cap runs out, the run is
/// reported `Stalled` with a diagnostic snapshot naming the wedged
/// sender.
#[test]
fn watchdog_reports_wedged_endpoints() {
    let mut rng = SplitMix64::new(0x57A11);
    let plan = random_plan(&mut rng);
    let total_sends: u64 = plan.sends.iter().map(|s| s.len() as u64).sum();
    if total_sends == 0 {
        panic!("seed must generate traffic");
    }
    let fault = FaultConfig {
        drop_p: 1.0,
        ..FaultConfig::default()
    };
    let rel = ReliabilityConfig {
        enabled: true,
        max_retries: 2,
        ..ReliabilityConfig::default()
    };
    let report = run_plan_faulty(&plan, NiKind::Cm5, BufferCount::Finite(8), fault, rel);
    assert_eq!(report.status, SimStatus::Stalled);
    assert!(!report.all_quiescent);
    assert_eq!(report.app_messages, 0, "nothing can get through");
    assert!(report.rel_stats.gave_up > 0);
    let stall = report.stall.expect("stall report must be attached");
    assert!(
        stall.wedged_endpoints().next().is_some(),
        "the dump must name at least one wedged endpoint:\n{stall}"
    );
    assert!(
        !stall.violations.is_empty(),
        "retry-cap violations recorded"
    );
}

/// Tighter buffering never delivers fewer messages (reliability is
/// independent of buffer count) and never changes how much traffic the
/// application offers.
#[test]
fn reliability_is_buffer_independent() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0xB0FF + case);
        let plan = random_plan(&mut rng);
        let ni = random_ni(&mut rng);
        let tight = run_plan(&plan, ni, BufferCount::Finite(1));
        let loose = run_plan(&plan, ni, BufferCount::Infinite);
        assert_eq!(
            tight.app_messages, loose.app_messages,
            "case {case} on {ni}"
        );
        assert_eq!(
            tight.fragments_sent, loose.fragments_sent,
            "case {case} on {ni}"
        );
    }
}
