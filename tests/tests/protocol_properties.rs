//! Property-based tests of the simulator's end-to-end protocol
//! invariants: message conservation, quiescence, accounting completeness
//! and determinism under arbitrary traffic patterns.

use proptest::prelude::*;

use nisim_core::process::{Action, AppMessage, HandlerSpec, Process, SendSpec};
use nisim_core::{Machine, MachineConfig, MachineReport, NiKind, TimeCategory};
use nisim_engine::{Dur, SimStatus, Time};
use nisim_net::{BufferCount, NodeId};

/// A scripted process: performs a fixed list of sends (with small compute
/// gaps) and counts what it receives.
struct Scripted {
    plan: Vec<SendSpec>,
    next: usize,
    received: u64,
}

impl Process for Scripted {
    fn next_action(&mut self, _now: Time) -> Action {
        if self.next >= self.plan.len() {
            return Action::Done;
        }
        let spec = self.plan[self.next];
        self.next += 1;
        Action::Send(spec)
    }

    fn on_message(&mut self, _msg: &AppMessage, _now: Time) -> HandlerSpec {
        self.received += 1;
        HandlerSpec::compute(Dur::ns(30))
    }

    fn is_done(&self) -> bool {
        self.next >= self.plan.len()
    }
}

/// One random traffic plan: per node, a list of (dst offset, payload).
#[derive(Clone, Debug)]
struct Plan {
    nodes: u32,
    sends: Vec<Vec<(u32, u64)>>,
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    (2u32..6)
        .prop_flat_map(|nodes| {
            let sends = proptest::collection::vec(
                proptest::collection::vec((1..nodes, 0u64..600), 0..12),
                nodes as usize,
            );
            (Just(nodes), sends)
        })
        .prop_map(|(nodes, sends)| Plan { nodes, sends })
}

fn ni_strategy() -> impl Strategy<Value = NiKind> {
    prop_oneof![
        Just(NiKind::Cm5),
        Just(NiKind::Cm5SingleCycle),
        Just(NiKind::Udma),
        Just(NiKind::Ap3000),
        Just(NiKind::StartJr),
        Just(NiKind::MemoryChannel),
        Just(NiKind::Cni512Q),
        Just(NiKind::Cni32Qm),
    ]
}

fn buffers_strategy() -> impl Strategy<Value = BufferCount> {
    prop_oneof![
        Just(BufferCount::Finite(1)),
        Just(BufferCount::Finite(2)),
        Just(BufferCount::Finite(8)),
        Just(BufferCount::Infinite),
    ]
}

fn run_plan(plan: &Plan, ni: NiKind, buffers: BufferCount) -> MachineReport {
    let cfg = MachineConfig::with_ni(ni)
        .nodes(plan.nodes)
        .flow_buffers(buffers);
    let sends = plan.sends.clone();
    let nodes = plan.nodes;
    Machine::run(cfg, move |id| -> Box<dyn Process> {
        let mine = sends[id.index()]
            .iter()
            .map(|&(off, payload)| SendSpec::new(NodeId((id.0 + off) % nodes), payload, 0))
            .collect();
        Box::new(Scripted {
            plan: mine,
            next: 0,
            received: 0,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every sent message is delivered exactly once, on every NI design,
    /// at every buffering level, and the machine reaches quiescence.
    #[test]
    fn messages_are_conserved(plan in plan_strategy(), ni in ni_strategy(), b in buffers_strategy()) {
        let total_sends: u64 = plan.sends.iter().map(|s| s.len() as u64).sum();
        let report = run_plan(&plan, ni, b);
        prop_assert_eq!(report.status, SimStatus::Drained);
        prop_assert!(report.all_quiescent, "not quiescent on {}", ni);
        prop_assert_eq!(report.app_messages, total_sends);
    }

    /// Per-node accounting is complete: the category durations sum to the
    /// span the ledger covers (no holes, no double counting).
    #[test]
    fn accounting_is_complete(plan in plan_strategy(), ni in ni_strategy()) {
        let report = run_plan(&plan, ni, BufferCount::Finite(2));
        for ledger in &report.ledgers {
            prop_assert_eq!(ledger.total(), ledger.stamp() - Time::ZERO);
        }
    }

    /// The simulation is deterministic: identical inputs give identical
    /// timing and traffic, bit for bit.
    #[test]
    fn runs_are_deterministic(plan in plan_strategy(), ni in ni_strategy(), b in buffers_strategy()) {
        let a = run_plan(&plan, ni, b);
        let c = run_plan(&plan, ni, b);
        prop_assert_eq!(a.elapsed, c.elapsed);
        prop_assert_eq!(a.bus_transactions, c.bus_transactions);
        prop_assert_eq!(a.retries, c.retries);
        prop_assert_eq!(a.mem_reads, c.mem_reads);
    }

    /// Infinite buffering never stalls, rejects, or retries.
    #[test]
    fn infinite_buffers_are_frictionless(plan in plan_strategy(), ni in ni_strategy()) {
        let report = run_plan(&plan, ni, BufferCount::Infinite);
        prop_assert_eq!(report.send_stalls, 0);
        prop_assert_eq!(report.recv_rejects, 0);
        prop_assert_eq!(report.retries, 0);
    }

    /// Tighter buffering never delivers fewer messages (reliability is
    /// independent of buffer count) and never improves raw traffic
    /// metrics below the frictionless case.
    #[test]
    fn reliability_is_buffer_independent(plan in plan_strategy(), ni in ni_strategy()) {
        let tight = run_plan(&plan, ni, BufferCount::Finite(1));
        let loose = run_plan(&plan, ni, BufferCount::Infinite);
        prop_assert_eq!(tight.app_messages, loose.app_messages);
        prop_assert_eq!(tight.fragments_sent, loose.fragments_sent);
    }
}
