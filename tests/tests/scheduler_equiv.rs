//! Differential property suite: the timing-wheel scheduler against the
//! retained reference `BinaryHeap` queue.
//!
//! The wheel ([`nisim_engine::wheel::TimerWheel`]) replaced the original
//! boxed-closure `BinaryHeap` scheduler; its FIFO-at-equal-instants
//! contract is what makes every run byte-reproducible, so the two
//! backends are driven here with seeded randomized streams — mixed
//! near/far horizons, same-instant bursts, and scheduling from within a
//! firing event — and must produce identical `(time, seq)` pop
//! sequences, identical event counts, and identical final clocks.

use nisim_engine::wheel::{BinaryHeapQueue, TimerWheel};
use nisim_engine::{Dur, Event, Sim, SimStatus, SplitMix64, Time};

/// Pops both queues in lockstep, asserting identical `(time, seq)`
/// sequences until both drain.
fn assert_queues_equal(wheel: &mut TimerWheel<u64>, heap: &mut BinaryHeapQueue<u64>, label: &str) {
    assert_eq!(wheel.len(), heap.len(), "{label}: length mismatch");
    let mut popped = 0u64;
    loop {
        let peeked = wheel.peek();
        let a = wheel.pop();
        let b = heap.pop();
        assert_eq!(
            a.as_ref().map(|e| (e.0, e.1)),
            peeked,
            "{label}: wheel peek/pop disagree at pop {popped}"
        );
        assert_eq!(
            a.as_ref().map(|e| (e.0, e.1)),
            b.as_ref().map(|e| (e.0, e.1)),
            "{label}: backends diverged at pop {popped}"
        );
        if a.is_none() {
            break;
        }
        popped += 1;
    }
}

/// A delay drawn from the machine's characteristic horizons: mostly
/// bus/link-scale nanoseconds, some µs-scale ack timers, occasionally
/// past the wheel's ~16.8 ms span (overflow), with same-instant zeros
/// mixed in.
fn mixed_delay(rng: &mut SplitMix64) -> u64 {
    match rng.gen_range(16) {
        0 => 0,                                   // same instant
        1..=2 => rng.gen_range(64_000) + 256,     // level 1
        3 => rng.gen_range(16_000_000),           // level 2
        4 => 16_800_000 + rng.gen_range(1 << 34), // overflow
        _ => rng.gen_range(256),                  // level 0
    }
}

#[test]
fn mixed_horizon_streams_pop_identically() {
    for case in 0..20u64 {
        let mut rng = SplitMix64::new(0x5EED + case);
        let mut wheel = TimerWheel::new();
        let mut heap = BinaryHeapQueue::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        // Interleave pushes and pops so the wheel's bases actually move:
        // every pop advances `now`, and later pushes land relative to it.
        for _ in 0..600 {
            let burst = rng.gen_range(4) + 1;
            for _ in 0..burst {
                let at = now + mixed_delay(&mut rng);
                wheel.push(Time::from_ns(at), seq, seq);
                heap.push(Time::from_ns(at), seq, seq);
                seq += 1;
            }
            if rng.gen_range(3) == 0 {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(
                    a.as_ref().map(|e| (e.0, e.1)),
                    b.as_ref().map(|e| (e.0, e.1)),
                    "case {case}: diverged mid-stream"
                );
                if let Some((t, _, _)) = a {
                    now = t.as_ns();
                }
            }
        }
        assert_queues_equal(&mut wheel, &mut heap, &format!("case {case}"));
    }
}

#[test]
fn same_instant_bursts_preserve_fifo_across_backends() {
    for case in 0..10u64 {
        let mut rng = SplitMix64::new(0xF1F0 + case);
        let mut wheel = TimerWheel::new();
        let mut heap = BinaryHeapQueue::new();
        // A handful of instants, each receiving a large interleaved burst.
        let instants: Vec<u64> = (0..8).map(|_| rng.gen_range(1 << 22)).collect();
        for seq in 0..400u64 {
            let at = instants[rng.gen_range(instants.len() as u64) as usize];
            wheel.push(Time::from_ns(at), seq, seq);
            heap.push(Time::from_ns(at), seq, seq);
        }
        assert_queues_equal(&mut wheel, &mut heap, &format!("case {case}"));
    }
}

/// The Sim-level half of the differential: the same recursive workload
/// run through the typed-event wheel `Sim` and through a closure replay
/// over the reference heap must agree on fire order, count, and clock.
///
/// Each fired event re-schedules 0–2 successors (drawn from a seeded
/// RNG shared by construction), exercising schedule-from-within-fire on
/// the wheel's cascade and re-anchor paths.
struct EquivCtx {
    rng: SplitMix64,
    fired_log: Vec<(u64, u32)>,
    spawned: u64,
    cap: u64,
}

#[derive(Clone, Copy)]
struct Spawn {
    id: u32,
}

impl Event<EquivCtx> for Spawn {
    fn fire(self, m: &mut EquivCtx, sim: &mut Sim<EquivCtx, Spawn>) {
        m.fired_log.push((sim.now().as_ns(), self.id));
        let kids = m.rng.gen_range(4);
        for _ in 0..kids {
            if m.spawned >= m.cap {
                break;
            }
            let d = mixed_delay(&mut m.rng);
            let id = m.spawned as u32;
            m.spawned += 1;
            sim.schedule_event_in(Dur::ns(d), Spawn { id });
        }
    }
}

fn run_typed(seed: u64, cap: u64) -> (Vec<(u64, u32)>, u64, u64) {
    let mut m = EquivCtx {
        rng: SplitMix64::new(seed),
        fired_log: Vec::new(),
        spawned: 0,
        cap,
    };
    let mut sim: Sim<EquivCtx, Spawn> = Sim::new();
    for _ in 0..8 {
        let id = m.spawned as u32;
        m.spawned += 1;
        sim.schedule_event_at(Time::from_ns(id as u64), Spawn { id })
            .unwrap();
    }
    assert_eq!(sim.run(&mut m), SimStatus::Drained);
    (m.fired_log, sim.events_fired(), sim.now().as_ns())
}

fn run_closure_replay(seed: u64, cap: u64) -> (Vec<(u64, u32)>, u64, u64) {
    // The pre-wheel design: boxed closures over the reference heap. The
    // replay must make exactly the same RNG calls in exactly the same
    // fire order to reproduce the typed run.
    type BoxedFire = Box<dyn FnOnce(&mut EquivCtx, &mut Replay)>;
    struct Replay {
        now: u64,
        seq: u64,
        fired: u64,
        queue: BinaryHeapQueue<BoxedFire>,
    }
    impl Replay {
        fn schedule(&mut self, at: u64, f: impl FnOnce(&mut EquivCtx, &mut Replay) + 'static) {
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Time::from_ns(at), seq, Box::new(f));
        }
    }
    fn spawn(id: u32) -> impl FnOnce(&mut EquivCtx, &mut Replay) {
        move |m, sim| {
            m.fired_log.push((sim.now, id));
            let kids = m.rng.gen_range(4);
            for _ in 0..kids {
                if m.spawned >= m.cap {
                    break;
                }
                let d = mixed_delay(&mut m.rng);
                let id = m.spawned as u32;
                m.spawned += 1;
                let at = sim.now + d;
                sim.schedule(at, spawn(id));
            }
        }
    }
    let mut m = EquivCtx {
        rng: SplitMix64::new(seed),
        fired_log: Vec::new(),
        spawned: 0,
        cap,
    };
    let mut sim = Replay {
        now: 0,
        seq: 0,
        fired: 0,
        queue: BinaryHeapQueue::new(),
    };
    for _ in 0..8 {
        let id = m.spawned as u32;
        m.spawned += 1;
        sim.schedule(id as u64, spawn(id));
    }
    while let Some((at, _, f)) = sim.queue.pop() {
        sim.now = at.as_ns();
        sim.fired += 1;
        f(&mut m, &mut sim);
    }
    (m.fired_log, sim.fired, sim.now)
}

#[test]
fn sim_runs_match_a_closure_replay_over_the_reference_heap() {
    for case in 0..8u64 {
        let seed = 0xD1FF + case;
        let (log_a, fired_a, now_a) = run_typed(seed, 3_000);
        let (log_b, fired_b, now_b) = run_closure_replay(seed, 3_000);
        assert_eq!(fired_a, fired_b, "case {case}: events_fired diverged");
        assert_eq!(now_a, now_b, "case {case}: final clock diverged");
        assert_eq!(log_a, log_b, "case {case}: fire order diverged");
        assert!(
            fired_a >= 3_000,
            "case {case}: workload too small to mean much"
        );
    }
}
