//! Smoke matrix: every macrobenchmark completes on every NI design at
//! several buffering levels, with consistent traffic volumes.

use nisim_core::{MachineConfig, NiKind};
use nisim_engine::Dur;
use nisim_net::BufferCount;
use nisim_workloads::apps::{run_app, AppParams, MacroApp};

const ALL_NIS: [NiKind; 9] = [
    NiKind::Cm5,
    NiKind::Cm5SingleCycle,
    NiKind::Udma,
    NiKind::Ap3000,
    NiKind::StartJr,
    NiKind::MemoryChannel,
    NiKind::Cni512Q,
    NiKind::Cni32Qm,
    NiKind::Cni32QmThrottle,
];

fn small_params() -> AppParams {
    AppParams {
        iterations: 2,
        intensity: 2,
        compute: Dur::us(2),
    }
}

#[test]
fn every_app_on_every_ni_completes() {
    for app in MacroApp::ALL {
        for ni in ALL_NIS {
            let cfg = MachineConfig::with_ni(ni).nodes(8);
            let r = run_app(app, &cfg, &small_params());
            assert!(r.all_quiescent, "{app} on {ni} not quiescent");
            assert!(r.app_messages > 0, "{app} on {ni} sent nothing");
        }
    }
}

#[test]
fn full_matrix_completes_through_the_sweep_harness() {
    use nisim_bench::{Patch, Sweep};

    // The full design-space cross product — every NI × every app × a
    // tight and a loose buffer level — at reduced node count and scale,
    // driven through the same parallel harness the experiment binaries
    // use. Time-bounded so a pathological slowdown fails rather than
    // hangs: the simulated work is tiny (the budget is wall-clock slack
    // for slow CI machines, not an expected runtime).
    let started = std::time::Instant::now();
    let sweep = Sweep::new("smoke-matrix")
        .apps(&MacroApp::ALL)
        .nis(&ALL_NIS)
        .buffers(&[BufferCount::Finite(1), BufferCount::Infinite])
        .patches(vec![Patch {
            label: "small".into(),
            nodes: Some(8),
            params: Some(small_params()),
            ..Patch::default()
        }]);
    let records = sweep.run(nisim_bench::default_jobs());
    assert_eq!(records.len(), MacroApp::ALL.len() * ALL_NIS.len() * 2);
    for r in &records {
        assert_eq!(r.status, "drained", "{}/{}/{}", r.work, r.ni, r.buffers);
        assert!(
            r.quiescent,
            "{}/{}/{} not quiescent",
            r.work, r.ni, r.buffers
        );
        assert!(r.stall.is_none(), "{}/{} stalled", r.work, r.ni);
        assert!(
            r.counter("app_messages") > 0,
            "{}/{} sent nothing",
            r.work,
            r.ni
        );
        // The four Figure 1 accounting categories partition accounted
        // processor time: their fractions must sum to exactly 1.
        assert!(
            r.accounted_ns() > 0,
            "{}/{} accounted nothing",
            r.work,
            r.ni
        );
        let total: f64 = nisim_core::TimeCategory::ALL
            .into_iter()
            .map(|c| r.fraction(c))
            .sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "{}/{}/{}: accounting fractions sum to {total}, not 1",
            r.work,
            r.ni,
            r.buffers
        );
    }
    // Belt and braces on top of the per-record status checks: the whole
    // matrix must contain zero watchdog-stalled runs.
    let stalled = records.iter().filter(|r| r.status == "stalled").count();
    assert_eq!(stalled, 0, "smoke matrix contains {stalled} stalled runs");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(120),
        "smoke matrix blew its time budget: {:?}",
        started.elapsed()
    );
}

#[test]
fn tight_buffers_never_lose_messages() {
    for app in MacroApp::ALL {
        let loose = run_app(
            app,
            &MachineConfig::with_ni(NiKind::Cm5)
                .nodes(8)
                .flow_buffers(BufferCount::Infinite),
            &small_params(),
        );
        let tight = run_app(
            app,
            &MachineConfig::with_ni(NiKind::Cm5)
                .nodes(8)
                .flow_buffers(BufferCount::Finite(1)),
            &small_params(),
        );
        assert_eq!(
            loose.app_messages, tight.app_messages,
            "{app}: message volume must not depend on buffering"
        );
    }
}

#[test]
fn message_volume_is_ni_independent() {
    // The NI design changes timing, never traffic volume (spsolve's
    // volume is mildly order-dependent through its accumulate-and-fire
    // elements, so it is checked with a tolerance).
    for app in MacroApp::ALL {
        let reference = run_app(
            app,
            &MachineConfig::with_ni(NiKind::Ap3000).nodes(8),
            &small_params(),
        )
        .app_messages;
        for ni in [NiKind::Cm5, NiKind::Cni32Qm] {
            let got =
                run_app(app, &MachineConfig::with_ni(ni).nodes(8), &small_params()).app_messages;
            if app == MacroApp::Spsolve {
                let ratio = got as f64 / reference as f64;
                assert!(
                    (0.8..=1.25).contains(&ratio),
                    "{app} volume drifted: {got} vs {reference}"
                );
            } else {
                assert_eq!(got, reference, "{app} volume differs on {ni}");
            }
        }
    }
}

#[test]
fn machine_scales_down_to_two_nodes() {
    for app in [MacroApp::Appbt, MacroApp::Em3d, MacroApp::Moldyn] {
        let cfg = MachineConfig::with_ni(NiKind::Cni32Qm).nodes(2);
        let r = run_app(app, &cfg, &small_params());
        assert!(r.all_quiescent, "{app} on 2 nodes");
    }
}

#[test]
fn machine_scales_up_to_more_nodes() {
    let cfg = MachineConfig::with_ni(NiKind::Ap3000).nodes(32);
    let r = run_app(MacroApp::Dsmc, &cfg, &small_params());
    assert!(r.all_quiescent);
    assert_eq!(r.ledgers.len(), 32);
}

#[test]
fn topologies_complete_with_rankings_intact() {
    use nisim_net::Topology;
    // The paper's extrapolation claim: real fabrics slow things a little
    // but do not change the NI comparison. em3d is throughput-bound, so
    // the fabric's per-hop latency moves it only a few percent.
    for topo in [Topology::Ideal, Topology::Ring, Topology::Mesh2D] {
        let mut cfg_fast = MachineConfig::with_ni(NiKind::Cni32Qm).nodes(16);
        cfg_fast.net.topology = topo;
        let fast = run_app(MacroApp::Em3d, &cfg_fast, &small_params());
        assert!(fast.all_quiescent, "{topo:?}");
        let mut cfg_slow = MachineConfig::with_ni(NiKind::Cm5).nodes(16);
        cfg_slow.net.topology = topo;
        let slow = run_app(MacroApp::Em3d, &cfg_slow, &small_params());
        assert!(
            slow.elapsed > fast.elapsed,
            "{topo:?}: the NI ranking must survive the fabric"
        );
    }
}

#[test]
fn mesh_distance_shows_up_in_latency() {
    use nisim_core::process::{Action, AppMessage, HandlerSpec, Process, SendSpec};
    use nisim_core::Machine;
    use nisim_engine::Time;
    use nisim_net::{NodeId, Topology};

    // One request from node 0 to the far corner of a 4x4 mesh (6 hops)
    // must take measurably longer to quiesce than one to a neighbour.
    struct One(u32, bool);
    impl Process for One {
        fn next_action(&mut self, _now: Time) -> Action {
            if self.1 {
                return Action::Done;
            }
            self.1 = true;
            Action::Send(SendSpec::new(NodeId(self.0), 64, 0))
        }
        fn on_message(&mut self, _m: &AppMessage, _now: Time) -> HandlerSpec {
            HandlerSpec::empty()
        }
        fn is_done(&self) -> bool {
            self.1
        }
    }
    struct Rest;
    impl Process for Rest {
        fn next_action(&mut self, _now: Time) -> Action {
            Action::Done
        }
        fn on_message(&mut self, _m: &AppMessage, _now: Time) -> HandlerSpec {
            HandlerSpec::empty()
        }
        fn is_done(&self) -> bool {
            true
        }
    }
    let run_to = |dst: u32| {
        let mut cfg = MachineConfig::with_ni(NiKind::Cni32Qm).nodes(16);
        cfg.net.topology = Topology::Mesh2D;
        Machine::run(cfg, move |id| -> Box<dyn Process> {
            if id.0 == 0 {
                Box::new(One(dst, false))
            } else {
                Box::new(Rest)
            }
        })
        .elapsed
    };
    let near = run_to(1); // 1 hop
    let far = run_to(15); // 6 hops
    assert!(
        far.as_ns() >= near.as_ns() + 5 * 40,
        "six hops vs one: near {near}, far {far}"
    );
}
